"""``codec-bench``: vectorized-vs-reference encoding kernel benchmark.

The vectorized kernels in :mod:`repro.encoding` promise *byte-identical*
streams to the scalar implementations they replaced, which are preserved
verbatim in :mod:`repro.encoding.reference`. This module makes that promise
a measured, committed artifact:

- every codec's encode and decode run on the same deterministic fixture —
  the quantization-symbol stream a real :class:`~repro.compressors.sz3.
  SZ3Compressor` produces for a synthetic field — and the outputs are
  diffed byte-for-byte against the reference oracles;
- both implementations are timed in the same run, so the recorded speedup
  compares like with like on the machine that produced the numbers;
- the report is written to ``BENCH_codec.json`` at the repo root,
  commit-stamped, so the perf trajectory of the kernels is tracked in
  version control alongside the code.

The same discipline covers the *whole-compressor* fused pipelines
(``report["compressors"]``): the tile-streamed sz3/szx/sperr
implementations are timed end-to-end against the frozen whole-array
oracles in :mod:`repro.compressors.reference`, with payload bytes,
metadata, and the decompressed array all required to match, plus
``tracemalloc`` peak-working-set and per-stage ``compressor.stage.*``
span breakdowns.

``--check`` mode (used in CI) shrinks the fixture and runs one rep: it
keeps the byte-identity gates (kernels and whole compressors) while
dropping the timing cost.
"""

from __future__ import annotations

import json
import subprocess
import time
from pathlib import Path

import numpy as np

from repro.obs import span

SCHEMA = "repro.codec-bench/v1"
DEFAULT_FIELD = "miranda/viscosity"
DEFAULT_SHAPE = (64, 64, 64)
DEFAULT_REL_EB = 1e-3
REPORT_NAME = "BENCH_codec.json"

_REPO_ROOT = Path(__file__).resolve().parents[3]


def repo_commit() -> str | None:
    """Short commit hash of the repo containing this module, if available."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=_REPO_ROOT, capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def sz3_symbol_stream(
    field_path: str = DEFAULT_FIELD,
    shape: tuple[int, ...] = DEFAULT_SHAPE,
    rel_eb: float = DEFAULT_REL_EB,
    seed: int | None = None,
) -> np.ndarray:
    """Quantization-symbol stream SZ3 feeds its entropy stage on a fixture.

    Captured by tapping ``_encode_codes`` during a real compression, so the
    benchmark exercises exactly the symbol statistics (one dominant
    "exactly predicted" symbol, geometric tails) the kernels see in
    production rather than synthetic uniform noise.
    """
    from repro.compressors.sz3 import SZ3Compressor
    from repro.data.datasets import load_field

    kwargs: dict = {"shape": tuple(shape)}
    if seed is not None:
        kwargs["seed"] = seed
    field = load_field(field_path, **kwargs)

    captured: list[np.ndarray] = []

    class _Tap(SZ3Compressor):
        def _encode_stream(self, freq, tiles, writer, clock):
            def spy():
                for sym in tiles:
                    captured.append(np.asarray(sym, dtype=np.int64).copy())
                    yield sym

            return super()._encode_stream(freq, spy(), writer, clock)

    _Tap().compress(field.data, field.relative_error_bound(rel_eb))
    if not captured:
        raise RuntimeError("fixture compression produced no symbol stream")
    return np.concatenate(captured)


def _best_of(fns: list, reps: int) -> tuple[list[float], list]:
    """Best wall-clock seconds and last result for each callable.

    The callables are timed *interleaved* — every rep round runs each once
    — so machine noise (frequency scaling, a busy neighbor) lands on the
    vectorized kernel and its reference alike instead of skewing whichever
    happened to run during the slow window. Cyclic GC is paused around the
    timed region (heap collected first) so entries timed later in the run
    don't pay collection passes triggered by earlier entries' garbage.
    """
    import gc

    best = [float("inf")] * len(fns)
    results: list = [None] * len(fns)
    gc.collect()
    enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(max(1, reps)):
            for i, fn in enumerate(fns):
                t0 = time.perf_counter()
                results[i] = fn()
                best[i] = min(best[i], time.perf_counter() - t0)
    finally:
        if enabled:
            gc.enable()
    return best, results


def _entry(
    name: str,
    nbytes: int,
    reps: int,
    encode_new,
    encode_ref,
    decode_new,
    decode_ref,
    check_encoded,
    check_decoded,
) -> dict:
    """Time one codec's four paths and verify both identity gates.

    ``check_encoded(new_payload, ref_payload)`` and
    ``check_decoded(new_out, ref_out)`` return True when the vectorized
    kernel's output is byte/element-identical to the reference's.
    """
    with span("codec_bench.codec", codec=name, nbytes=nbytes):
        (enc_s, ref_enc_s), (payload, ref_payload) = _best_of(
            [encode_new, encode_ref], reps
        )
        (dec_s, ref_dec_s), (decoded, ref_decoded) = _best_of(
            [lambda: decode_new(payload), lambda: decode_ref(ref_payload)], reps
        )
    identical = bool(
        check_encoded(payload, ref_payload) and check_decoded(decoded, ref_decoded)
    )
    mb = nbytes / 1e6
    return {
        "input_bytes": int(nbytes),
        "encoded_bytes": int(len(payload)),
        "encode_mbps": mb / enc_s,
        "decode_mbps": mb / dec_s,
        "ref_encode_mbps": mb / ref_enc_s,
        "ref_decode_mbps": mb / ref_dec_s,
        "speedup_encode": ref_enc_s / enc_s,
        "speedup_decode": ref_dec_s / dec_s,
        "speedup_total": (ref_enc_s + ref_dec_s) / (enc_s + dec_s),
        "identical": identical,
    }


def _stage_breakdown(compressor, data: np.ndarray, eb: float) -> dict:
    """Aggregated ``compressor.stage.*`` seconds for one traced round trip.

    Fused pipelines emit one span per stage per call (tile times already
    summed by :class:`repro.obs.StageClock`); the frozen references are
    uninstrumented, so the breakdown describes the fused implementation.
    """
    from repro.obs import capture

    with capture() as rec:
        result = compressor.compress(data, eb)
        compressor.decompress(result)
    stages: dict[str, dict] = {}

    def walk(spans):
        for sp in spans:
            if sp.name.startswith("compressor.stage."):
                entry = stages.setdefault(
                    sp.name.removeprefix("compressor.stage."),
                    {"seconds": 0.0, "calls": 0},
                )
                entry["seconds"] += sp.elapsed
                entry["calls"] += int(sp.attrs.get("calls", 1))
            walk(sp.children)

    walk(rec.roots)
    return stages


def _peak_tracemalloc(fn) -> int:
    """Peak traced allocation of one untimed call (numpy buffers included)."""
    import tracemalloc

    tracemalloc.start()
    tracemalloc.reset_peak()
    fn()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return int(peak)


def _compressor_entry(name: str, fused, ref, data: np.ndarray, eb: float,
                      reps: int) -> dict:
    """Time one fused compressor against its frozen whole-array oracle.

    Identity is the full contract: payload bytes, metadata dict, and the
    decompressed array must all match. Peak working set is measured with
    ``tracemalloc`` on separate untimed runs so the accounting overhead
    never pollutes the throughput numbers.
    """
    with span("codec_bench.compressor", codec=name, nbytes=data.nbytes):
        (enc_s, ref_enc_s), (res, ref_res) = _best_of(
            [lambda: fused.compress(data, eb), lambda: ref.compress(data, eb)], reps
        )
        identical = bool(
            res.payload == ref_res.payload and res.metadata == ref_res.metadata
        )
        (dec_s, ref_dec_s), (out, ref_out) = _best_of(
            [lambda: fused.decompress(res), lambda: ref.decompress(ref_res)], reps
        )
        identical = identical and bool(np.array_equal(out, ref_out))
        peak_new = _peak_tracemalloc(lambda: fused.compress(data, eb))
        peak_ref = _peak_tracemalloc(lambda: ref.compress(data, eb))
    mb = data.nbytes / 1e6
    return {
        "input_bytes": int(data.nbytes),
        "payload_bytes": int(len(res.payload)),
        "ratio": round(data.nbytes / max(len(res.payload), 1), 3),
        "compress_mbps": mb / enc_s,
        "decompress_mbps": mb / dec_s,
        "ref_compress_mbps": mb / ref_enc_s,
        "ref_decompress_mbps": mb / ref_dec_s,
        "speedup_compress": ref_enc_s / enc_s,
        "speedup_decompress": ref_dec_s / dec_s,
        "peak_bytes": peak_new,
        "ref_peak_bytes": peak_ref,
        "stages": _stage_breakdown(fused, data, eb),
        "identical": identical,
    }


def run_compressor_bench(
    field_path: str = DEFAULT_FIELD,
    shape: tuple[int, ...] = DEFAULT_SHAPE,
    rel_eb: float = DEFAULT_REL_EB,
    reps: int = 3,
    seed: int | None = None,
) -> dict:
    """Benchmark the fused compressor pipelines against their frozen oracles.

    Whole-compressor compress/decompress throughput for the tile-streamed
    sz3/szx/sperr pipelines vs the whole-array references in
    :mod:`repro.compressors.reference`, with byte+metadata+decode identity,
    tracemalloc peak working set, and the per-stage span breakdown.
    """
    from repro.compressors.reference import (
        ReferenceSPERRCompressor,
        ReferenceSZ3Compressor,
        ReferenceSZXCompressor,
    )
    from repro.compressors.sperr import SPERRCompressor
    from repro.compressors.sz3 import SZ3Compressor
    from repro.compressors.szx import SZXCompressor
    from repro.data.datasets import load_field

    kwargs: dict = {"shape": tuple(shape)}
    if seed is not None:
        kwargs["seed"] = seed
    field = load_field(field_path, **kwargs)
    data = np.ascontiguousarray(field.data, dtype=np.float64)
    eb = field.relative_error_bound(rel_eb)

    pairs = {
        "szx": (SZXCompressor(), ReferenceSZXCompressor()),
        "sz3": (SZ3Compressor(), ReferenceSZ3Compressor()),
        "sz3_lorenzo": (
            SZ3Compressor(predictor="lorenzo"),
            ReferenceSZ3Compressor(predictor="lorenzo"),
        ),
        "sperr": (
            SPERRCompressor(chunk_edge=32),
            ReferenceSPERRCompressor(chunk_edge=32),
        ),
    }
    return {
        name: _compressor_entry(name, fused, ref, data, eb, reps)
        for name, (fused, ref) in pairs.items()
    }


def run_codec_bench(
    field_path: str = DEFAULT_FIELD,
    shape: tuple[int, ...] = DEFAULT_SHAPE,
    rel_eb: float = DEFAULT_REL_EB,
    reps: int = 3,
    seed: int | None = None,
) -> dict:
    """Benchmark every vectorized codec against its frozen scalar reference.

    Returns the ``BENCH_codec.json`` report dict; ``report["identical"]``
    is the aggregate byte-identity verdict across all codecs.
    """
    from repro.compressors.sz3 import _ALPHABET
    from repro.encoding import reference
    from repro.encoding.bitstream import BitReader, BitWriter
    from repro.encoding.huffman import HuffmanCodec
    from repro.encoding.lz77 import lz77_compress, lz77_decompress
    from repro.encoding.range_coder import RangeDecoder, RangeEncoder
    from repro.encoding.rle import rle_bytes_decode, rle_bytes_encode

    with span("codec_bench.fixture", field=field_path, shape=list(shape)):
        symbols = sz3_symbol_stream(field_path, shape, rel_eb=rel_eb, seed=seed)
    count = int(symbols.size)
    sym_bytes = int(symbols.size * symbols.itemsize)
    zero_symbol = int(np.bincount(symbols).argmax())

    codec = HuffmanCodec.fit(symbols, alphabet_size=_ALPHABET)
    freq = np.bincount(symbols, minlength=_ALPHABET)

    def huff_encode_new() -> bytes:
        w = BitWriter()
        codec.encode(symbols, w)
        return w.getvalue()

    def huff_encode_ref() -> bytes:
        w = BitWriter()
        reference.huffman_encode_reference(codec, symbols, w)
        return w.getvalue()

    # The LZ77 fixture is the Huffman-coded bitstream — exactly the bytes
    # SZ3's lossless backend sees in production.
    huff_payload = huff_encode_new()
    lz_bytes = len(huff_payload)

    same_bytes = lambda a, b: a == b  # noqa: E731
    same_syms = lambda a, b: bool(np.array_equal(a, b) and np.array_equal(a, symbols))  # noqa: E731

    codecs = {
        "huffman": _entry(
            "huffman", sym_bytes, reps,
            huff_encode_new,
            huff_encode_ref,
            lambda p: codec.decode(BitReader(p), count),
            lambda p: reference.huffman_decode_reference(codec, BitReader(p), count),
            same_bytes, same_syms,
        ),
        "lz77": _entry(
            "lz77", lz_bytes, reps,
            lambda: lz77_compress(huff_payload),
            lambda: reference.lz77_compress_reference(huff_payload),
            lz77_decompress,
            lz77_decompress,
            same_bytes,
            lambda a, b: a == b == huff_payload,
        ),
        "range": _entry(
            "range", sym_bytes, reps,
            lambda: RangeEncoder(freq).encode(symbols),
            lambda: reference.range_encode_reference(RangeEncoder(freq), symbols),
            lambda p: RangeDecoder(freq, p).decode(count),
            lambda p: reference.range_decode_reference(RangeDecoder(freq, p), count),
            same_bytes, same_syms,
        ),
        "rle": _entry(
            "rle", sym_bytes, reps,
            lambda: rle_bytes_encode(symbols, zero_symbol=zero_symbol),
            lambda: reference.rle_bytes_encode_reference(symbols, zero_symbol=zero_symbol),
            lambda p: rle_bytes_decode(p, zero_symbol=zero_symbol),
            lambda p: reference.rle_bytes_decode_reference(p, zero_symbol=zero_symbol),
            same_bytes, same_syms,
        ),
        # The composed SZ3 lossless stage (Huffman + LZ77) — the pipeline
        # the >=3x acceptance gate is measured on.
        "sz3_lossless": _entry(
            "sz3_lossless", sym_bytes, reps,
            lambda: lz77_compress(huff_encode_new()),
            lambda: reference.lz77_compress_reference(huff_encode_ref()),
            lambda p: codec.decode(BitReader(lz77_decompress(p)), count),
            lambda p: reference.huffman_decode_reference(
                codec, BitReader(lz77_decompress(p)), count
            ),
            same_bytes, same_syms,
        ),
    }

    compressors = run_compressor_bench(
        field_path, shape, rel_eb=rel_eb, reps=reps, seed=seed
    )

    report = {
        "schema": SCHEMA,
        "commit": repo_commit(),
        "generated_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "field": field_path,
        "shape": list(shape),
        "rel_error_bound": rel_eb,
        "reps": int(reps),
        "n_symbols": count,
        "symbol_bytes": sym_bytes,
        "huffman_stream_bytes": lz_bytes,
        "codecs": codecs,
        "compressors": compressors,
        "identical": all(c["identical"] for c in codecs.values())
        and all(c["identical"] for c in compressors.values()),
    }
    return report


def format_report(report: dict) -> str:
    """Human-readable per-codec table of the report."""
    lines = [
        f"codec-bench: {report['field']} shape={tuple(report['shape'])} "
        f"rel_eb={report['rel_error_bound']:g} reps={report['reps']} "
        f"n_symbols={report['n_symbols']} commit={report['commit'] or '?'}",
        f"{'codec':<13} {'MB':>6} {'enc MB/s':>9} {'dec MB/s':>9} "
        f"{'enc x':>7} {'dec x':>7} {'total x':>8} {'identical':>10}",
    ]
    for name, c in report["codecs"].items():
        lines.append(
            f"{name:<13} {c['input_bytes']/1e6:>6.2f} {c['encode_mbps']:>9.2f} "
            f"{c['decode_mbps']:>9.2f} {c['speedup_encode']:>7.2f} "
            f"{c['speedup_decode']:>7.2f} {c['speedup_total']:>8.2f} "
            f"{'yes' if c['identical'] else 'DIVERGED':>10}"
        )
    if report.get("compressors"):
        lines.append(
            f"{'compressor':<13} {'ratio':>6} {'cmp MB/s':>9} {'dec MB/s':>9} "
            f"{'cmp x':>7} {'dec x':>7} {'peak MB':>8} {'ref peak':>9} {'identical':>10}"
        )
        for name, c in report["compressors"].items():
            lines.append(
                f"{name:<13} {c['ratio']:>6.1f} {c['compress_mbps']:>9.2f} "
                f"{c['decompress_mbps']:>9.2f} {c['speedup_compress']:>7.2f} "
                f"{c['speedup_decompress']:>7.2f} {c['peak_bytes']/1e6:>8.1f} "
                f"{c['ref_peak_bytes']/1e6:>9.1f} "
                f"{'yes' if c['identical'] else 'DIVERGED':>10}"
            )
    return "\n".join(lines)


def write_report(report: dict, path: str | Path | None = None) -> Path:
    """Write the report JSON (default: ``BENCH_codec.json`` at repo root)."""
    out = Path(path) if path is not None else _REPO_ROOT / REPORT_NAME
    out.write_text(json.dumps(report, indent=2, sort_keys=False) + "\n")
    return out


def load_report(path: str | Path | None = None) -> dict | None:
    """Read a previously committed report; None when absent or unreadable."""
    p = Path(path) if path is not None else _REPO_ROOT / REPORT_NAME
    try:
        report = json.loads(p.read_text())
    except (OSError, ValueError):
        return None
    return report if report.get("schema") == SCHEMA else None
