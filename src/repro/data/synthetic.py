"""Spectral synthesis of scientific-looking scalar fields.

A Gaussian random field with power spectrum ``P(k) ~ k^slope`` reproduces
the smoothness statistics that drive lossy compressibility: steep slopes
(-4 and below) give very smooth, highly compressible fields (climate,
diffusive quantities); shallow slopes (-5/3 Kolmogorov) give turbulent,
harder-to-compress fields. Log-normal point transforms add the heavy tails
of density fields (cosmology), and explicit structures (vortices, fronts,
current sheets) mimic the coherent features of each application domain.
"""

from __future__ import annotations

import numpy as np


def _k_grid(shape: tuple[int, ...]) -> np.ndarray:
    """|k| on the rfft grid for ``shape`` (last axis halved)."""
    axes = [np.fft.fftfreq(n) for n in shape[:-1]]
    axes.append(np.fft.rfftfreq(shape[-1]))
    mesh = np.meshgrid(*axes, indexing="ij")
    k2 = np.zeros(mesh[0].shape)
    for m in mesh:
        k2 += m * m
    return np.sqrt(k2)


def gaussian_random_field(
    shape: tuple[int, ...],
    slope: float = -3.0,
    seed: int | np.random.Generator = 0,
    anisotropy: tuple[float, ...] | None = None,
    phase_shift: float = 0.0,
    amplitude_growth: float = 0.0,
) -> np.ndarray:
    """Zero-mean unit-variance GRF with power spectrum ``k^slope``.

    ``phase_shift``/``amplitude_growth`` implement cheap "time evolution":
    rotating all Fourier phases by ``phase_shift * |k|`` and tilting the
    spectrum produces a field correlated with (but different from) the
    ``phase_shift = 0`` field — how the multi-timestep datasets (NYX,
    Hurricane) are evolved.
    """
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    shape = tuple(int(s) for s in shape)
    k = _k_grid(shape)
    spectrum = np.zeros_like(k)
    nz = k > 0
    kk = k.copy()
    if anisotropy is not None:
        # Stretch wavenumbers per axis: larger factor = smoother along axis.
        axes = [np.fft.fftfreq(n) for n in shape[:-1]]
        axes.append(np.fft.rfftfreq(shape[-1]))
        mesh = np.meshgrid(*axes, indexing="ij")
        k2 = np.zeros(mesh[0].shape)
        for m, a in zip(mesh, anisotropy):
            k2 += (m * a) ** 2
        kk = np.sqrt(k2)
        nz = kk > 0
    spectrum[nz] = kk[nz] ** (slope / 2.0)
    if amplitude_growth:
        spectrum[nz] *= kk[nz] ** (amplitude_growth / 2.0)
    noise = rng.standard_normal(k.shape) + 1j * rng.standard_normal(k.shape)
    if phase_shift:
        noise = noise * np.exp(1j * 2.0 * np.pi * phase_shift * k * shape[0])
    coefs = noise * spectrum
    out = np.fft.irfftn(coefs, s=shape, axes=tuple(range(len(shape))))
    std = out.std()
    if std > 0:
        out = out / std
    return out


def lognormal_field(
    shape: tuple[int, ...],
    slope: float = -2.2,
    sigma: float = 1.5,
    seed: int | np.random.Generator = 0,
    **kwargs,
) -> np.ndarray:
    """Heavy-tailed positive field ``exp(sigma * GRF)`` (density-like)."""
    g = gaussian_random_field(shape, slope=slope, seed=seed, **kwargs)
    return np.exp(sigma * g)


def radial_coords(shape: tuple[int, ...], center: tuple[float, ...] | None = None):
    """Per-axis normalized coordinates and radius from ``center``."""
    if center is None:
        center = tuple(0.5 for _ in shape)
    axes = [np.linspace(0.0, 1.0, n, endpoint=False) for n in shape]
    mesh = np.meshgrid(*axes, indexing="ij")
    r2 = np.zeros(mesh[0].shape)
    for m, c in zip(mesh, center):
        r2 += (m - c) ** 2
    return mesh, np.sqrt(r2)


def vortex_field(
    shape: tuple[int, ...],
    center: tuple[float, ...],
    radius: float = 0.18,
    strength: float = 1.0,
) -> np.ndarray:
    """Axisymmetric vortex magnitude profile (hurricane eye analogue)."""
    _, r = radial_coords(shape, center)
    return strength * (r / radius) * np.exp(1.0 - (r / radius) ** 2)


def front_field(
    shape: tuple[int, ...],
    seed: int | np.random.Generator = 0,
    sharpness: float = 25.0,
    n_fronts: int = 3,
) -> np.ndarray:
    """Smooth field with sharp sigmoidal fronts (ignition/shock analogue)."""
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    base = gaussian_random_field(shape, slope=-3.5, seed=rng)
    out = np.zeros(shape)
    for _ in range(n_fronts):
        level = rng.uniform(-1.0, 1.0)
        out += np.tanh(sharpness * (base - level))
    return out / max(n_fronts, 1)


def current_sheet_field(
    shape: tuple[int, ...], seed: int | np.random.Generator = 0
) -> np.ndarray:
    """Thin high-amplitude sheets (magnetic reconnection analogue)."""
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    base = gaussian_random_field(shape, slope=-2.8, seed=rng)
    # Sheets live where the potential crosses zero; 1/cosh^2 profile.
    return 1.0 / np.cosh(8.0 * base) ** 2 + 0.05 * gaussian_random_field(
        shape, slope=-1.8, seed=rng
    )
