"""Synthetic stand-ins for the paper's six datasets (Table 2).

Every generator is deterministic in its seed, returns float32 fields (the
SDRBench convention), and accepts a ``shape`` override. Default shapes are
scaled-down versions of the paper's (Table 2) so the full experiment suite
runs on one CPU; the aspect ratios and per-field character are preserved.

===========  =========================  =============================
dataset      paper dims                 default here
===========  =========================  =============================
Miranda      256 x 384 x 384, 7 fields  48 x 64 x 64
NYX          512^3, 4 fields, t-steps   48^3
CESM         1800 x 3600 (2-D)          180 x 360
Hurricane    100 x 500 x 500, 13 x 48t  24 x 72 x 72
HCCI         560^3                      56^3
MRS          512^3                      48^3
===========  =========================  =============================
"""

from __future__ import annotations

import numpy as np

from repro.data.fields import Field
from repro.data.synthetic import (
    current_sheet_field,
    front_field,
    gaussian_random_field,
    lognormal_field,
    radial_coords,
    vortex_field,
)

_F32 = np.float32


def _mk(dataset: str, name: str, data: np.ndarray, timestep: int = 0) -> Field:
    return Field(dataset=dataset, name=name, data=data.astype(_F32), timestep=timestep)


def miranda(shape: tuple[int, ...] = (48, 64, 64), seed: int = 7) -> list[Field]:
    """Radiation-hydrodynamics turbulence (LLNL Miranda): 7 fields.

    Mixing-layer character: smooth large-scale structure with a turbulent
    interface band — density/viscosity smooth and highly compressible,
    velocities closer to Kolmogorov turbulence.
    """
    rng = np.random.default_rng(seed)
    mesh, _ = radial_coords(shape)
    # Mixing interface along axis 0, as in the Rayleigh-Taylor setup.
    interface = np.tanh(6.0 * (mesh[0] - 0.5) + gaussian_random_field(shape, -3.0, rng))
    fields = [
        _mk(
            "miranda",
            "density",
            1.0 + 0.8 * interface + 0.05 * gaussian_random_field(shape, -3.2, rng),
        ),
        _mk("miranda", "diffusivity", np.exp(0.4 * gaussian_random_field(shape, -4.0, rng))),
        _mk("miranda", "pressure", 10.0 + 2.0 * gaussian_random_field(shape, -3.6, rng)),
        _mk("miranda", "velocityx", gaussian_random_field(shape, -5.0 / 3.0 - 2.0, rng)),
        _mk("miranda", "velocityy", gaussian_random_field(shape, -5.0 / 3.0 - 2.0, rng)),
        _mk("miranda", "velocityz", gaussian_random_field(shape, -5.0 / 3.0 - 2.0, rng)),
        _mk(
            "miranda",
            "viscosity",
            np.exp(0.3 * gaussian_random_field(shape, -3.8, rng)) * (1.2 + interface),
        ),
    ]
    return fields


def nyx(
    shape: tuple[int, ...] = (48, 48, 48), seed: int = 11, timestep: int = 0
) -> list[Field]:
    """Cosmological hydrodynamics (NYX): 4 fields, multiple timesteps.

    Density fields are log-normal with strong clumping (huge dynamic range),
    temperature log-normal but milder, velocity a near-Gaussian field.
    ``timestep`` evolves the structure via phase rotation + growth, the
    analogue of gravitational clustering between snapshots.
    """
    rng = np.random.default_rng(seed)
    shift = 0.015 * timestep
    growth = 0.06 * timestep
    kwargs = dict(phase_shift=shift, amplitude_growth=growth)
    baryon = lognormal_field(shape, slope=-2.2, sigma=1.8 + 0.02 * timestep, seed=rng, **kwargs)
    dm = lognormal_field(shape, slope=-2.0, sigma=2.2 + 0.02 * timestep, seed=rng, **kwargs)
    temp = 1e4 * lognormal_field(shape, slope=-2.6, sigma=0.9, seed=rng, **kwargs)
    vel = 3e7 * gaussian_random_field(shape, slope=-2.4, seed=rng, **kwargs)
    return [
        _mk("nyx", "baryon_density", baryon, timestep),
        _mk("nyx", "dark_matter_density", dm, timestep),
        _mk("nyx", "temperature", temp, timestep),
        _mk("nyx", "velocity_x", vel, timestep),
    ]


def cesm(shape: tuple[int, ...] = (180, 360), seed: int = 13) -> list[Field]:
    """Community Earth System Model (2-D climate): 6 representative fields.

    Strong zonal (latitudinal) structure plus smooth anomalies; CESM's 77
    fields fall into a few statistical families, one field per family here.
    """
    rng = np.random.default_rng(seed)
    lat = np.linspace(-np.pi / 2, np.pi / 2, shape[0])[:, None]
    zonal = np.cos(lat) ** 2 * np.ones((1, shape[1]))
    aniso = (1.0, 3.0)  # smoother east-west than north-south
    return [
        _mk(
            "cesm",
            "ts",
            220.0 + 80.0 * zonal + 5.0 * gaussian_random_field(shape, -3.4, rng, anisotropy=aniso),
        ),
        _mk("cesm", "psl", 1e5 + 2e3 * gaussian_random_field(shape, -3.8, rng, anisotropy=aniso)),
        _mk("cesm", "precip", np.maximum(lognormal_field(shape, -2.4, 1.2, rng) * zonal, 0.0)),
        _mk(
            "cesm",
            "u850",
            15.0 * zonal * np.sin(3 * lat)
            + 4.0 * gaussian_random_field(shape, -2.9, rng, anisotropy=aniso),
        ),
        _mk(
            "cesm",
            "cloud",
            np.clip(0.5 + 0.4 * gaussian_random_field(shape, -2.6, rng), 0.0, 1.0),
        ),
        _mk(
            "cesm",
            "q",
            np.exp(-4.0 + 2.0 * zonal + 0.5 * gaussian_random_field(shape, -3.1, rng)),
        ),
    ]


_HURRICANE_FIELDS = (
    "u", "v", "w", "tc", "p", "qvapor", "qcloud", "qice",
    "qrain", "qsnow", "qgraup", "precip", "vapor",
)


def hurricane(
    shape: tuple[int, ...] = (24, 72, 72), seed: int = 17, timestep: int = 0
) -> list[Field]:
    """Hurricane Isabel (weather): 13 fields; the vortex moves with time.

    The time-varying data characteristics — the eye translating across the
    domain while intensifying — are the behaviour that motivates CAROL's
    incremental model refinement (paper Section 1).
    """
    rng = np.random.default_rng(seed)
    # Eye translates diagonally and deepens with timestep.
    cx = 0.30 + 0.010 * timestep
    cy = 0.30 + 0.008 * timestep
    strength = 1.0 + 0.04 * timestep
    center = (0.5, cx % 1.0, cy % 1.0) if len(shape) == 3 else (cx % 1.0, cy % 1.0)
    vortex = vortex_field(shape, center, radius=0.15, strength=strength)
    shift = 0.01 * timestep
    fields = []
    for i, name in enumerate(_HURRICANE_FIELDS):
        background = gaussian_random_field(
            shape, slope=-2.8 - 0.1 * (i % 4), seed=rng, phase_shift=shift
        )
        if name in ("u", "v"):
            data = 30.0 * vortex * (1 if name == "u" else -1) + 5.0 * background
        elif name == "p":
            peak = np.exp(-((vortex / vortex.max()) ** 2))
            data = 1e5 - 5e3 * strength * peak + 300.0 * background
        elif name.startswith("q") or name in ("vapor", "precip"):
            data = np.maximum(np.exp(0.8 * background) * (0.2 + vortex), 0.0) * 1e-3
        else:
            data = 280.0 + 20.0 * background + 10.0 * vortex
        fields.append(_mk("hurricane", name, data, timestep))
    return fields


def hcci(shape: tuple[int, ...] = (56, 56, 56), seed: int = 19) -> list[Field]:
    """Homogeneous charge compression ignition (Klacansky): sharp fronts."""
    rng = np.random.default_rng(seed)
    return [_mk("hcci", "oh", 1.0 + front_field(shape, rng, sharpness=30.0, n_fronts=4))]


def mrs(shape: tuple[int, ...] = (48, 48, 48), seed: int = 23) -> list[Field]:
    """Magnetic reconnection simulation (Klacansky): current sheets."""
    rng = np.random.default_rng(seed)
    return [_mk("mrs", "magnetic_reconnection", current_sheet_field(shape, rng))]


def duct(shape: tuple[int, ...] = (24, 48, 96), seed: int = 29) -> list[Field]:
    """Duct flow (Klacansky, used in Fig. 3): channel turbulence."""
    rng = np.random.default_rng(seed)
    mesh, _ = radial_coords(shape)
    profile = 4.0 * mesh[0] * (1.0 - mesh[0])  # parabolic channel profile
    turb = gaussian_random_field(
        shape, slope=-5.0 / 3.0 - 2.0, seed=rng, anisotropy=(1.0, 1.0, 0.4)
    )
    return [_mk("duct", "velocity_magnitude", 10.0 * profile + 2.0 * turb * profile)]


_GENERATORS = {
    "miranda": miranda,
    "nyx": nyx,
    "cesm": cesm,
    "hurricane": hurricane,
    "hcci": hcci,
    "mrs": mrs,
    "duct": duct,
}

DATASET_NAMES = tuple(_GENERATORS)


def load_dataset(name: str, **kwargs) -> list[Field]:
    """Generate all fields of a dataset by name."""
    key = name.lower()
    if key not in _GENERATORS:
        raise KeyError(f"unknown dataset {name!r}; available: {', '.join(_GENERATORS)}")
    return _GENERATORS[key](**kwargs)


def load_field(path: str, **kwargs) -> Field:
    """Load one field by ``"dataset/field"`` path, e.g. ``"miranda/viscosity"``."""
    dataset, _, fname = path.partition("/")
    for f in load_dataset(dataset, **kwargs):
        if f.name == fname:
            return f
    raise KeyError(f"dataset {dataset!r} has no field {fname!r}")
