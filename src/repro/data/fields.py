"""Field container used throughout the frameworks."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class Field:
    """One named scalar field from a (synthetic) scientific dataset.

    ``mask`` is set only by loaders that replaced non-finite fill
    sentinels (see ``load_raw(..., on_nonfinite="mask")``): ``True``
    marks positions whose value was substituted and should be restored
    after a lossy round trip.
    """

    dataset: str
    name: str
    data: np.ndarray
    timestep: int = 0
    mask: np.ndarray | None = None

    @property
    def path(self) -> str:
        """Stable identifier, e.g. ``"miranda/viscosity"``."""
        if self.timestep:
            return f"{self.dataset}/{self.name}@t{self.timestep}"
        return f"{self.dataset}/{self.name}"

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    @property
    def value_range(self) -> float:
        return float(self.data.max() - self.data.min())

    def relative_error_bound(self, rel: float) -> float:
        """Absolute error bound corresponding to a value-range fraction."""
        vr = self.value_range
        return rel * vr if vr > 0 else rel

    def __repr__(self) -> str:
        return f"Field({self.path}, shape={self.data.shape}, dtype={self.data.dtype})"
