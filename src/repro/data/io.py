"""Raw binary field I/O (the SDRBench interchange format).

SDRBench distributes fields as headerless little-endian binary arrays
(typically float32), with the grid dimensions given in the filename or an
accompanying note. These helpers load such files into :class:`Field`
objects — so when the real Miranda/NYX/CESM data is on disk, the whole
pipeline runs on it unchanged — and write fields back out for
interoperability with the reference compressors' CLIs.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

import numpy as np

from repro.data.fields import Field


def load_raw(
    path: str | Path,
    shape: tuple[int, ...],
    dtype: str | np.dtype = np.float32,
    dataset: str | None = None,
    name: str | None = None,
    on_nonfinite: str = "raise",
) -> Field:
    """Load a headerless binary field (SDRBench convention).

    ``shape`` is the logical grid (C order, slowest axis first, matching
    SDRBench's ``<field>_<d1>x<d2>x<d3>.f32`` naming read right-to-left in
    the filename but passed here in array order).

    Real SDRBench fields carry NaN/Inf fill sentinels (land cells in
    climate data, void regions). ``on_nonfinite`` selects how they are
    handled: ``"raise"`` (default) rejects the file — error-bounded
    compression is undefined on non-finite values — while ``"mask"``
    replaces them with the mean of the finite values and records the
    replaced positions on :attr:`Field.mask`, so a caller can restore the
    sentinels after decompression.
    """
    if on_nonfinite not in ("raise", "mask"):
        raise ValueError(f'on_nonfinite must be "raise" or "mask", got {on_nonfinite!r}')
    path = Path(path)
    dtype = np.dtype(dtype)
    expected = int(np.prod(shape)) * dtype.itemsize
    actual = path.stat().st_size
    if actual != expected:
        raise ValueError(
            f"{path.name}: file has {actual} bytes but shape {shape} with "
            f"dtype {dtype} needs {expected}"
        )
    data = np.fromfile(path, dtype=dtype).reshape(shape)
    mask = None
    finite = np.isfinite(data)
    if not finite.all():
        if on_nonfinite == "raise":
            raise ValueError(f"{path.name}: contains non-finite values")
        if not finite.any():
            raise ValueError(f"{path.name}: every value is non-finite; nothing to mask")
        mask = ~finite
        data = data.copy()
        data[mask] = data[finite].mean(dtype=np.float64)
    return Field(
        dataset=dataset or path.parent.name or "raw",
        name=name or path.stem,
        data=data,
        mask=mask,
    )


def save_raw(field: Field, path: str | Path) -> Path:
    """Write a field as headerless binary (inverse of :func:`load_raw`).

    The write is atomic: bytes go to a temporary file in the destination
    directory which is ``os.replace``-d over ``path`` only once fully
    written, so a crash mid-write never leaves a truncated field behind.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(prefix=f".{path.name}.", suffix=".tmp", dir=path.parent)
    try:
        with os.fdopen(fd, "wb") as fh:
            field.data.tofile(fh)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def load_raw_dataset(
    directory: str | Path,
    shape: tuple[int, ...],
    pattern: str = "*.f32",
    dtype: str | np.dtype = np.float32,
    dataset: str | None = None,
) -> list[Field]:
    """Load every matching raw file in a directory as one dataset.

    All fields must share ``shape`` (the SDRBench layout); files whose size
    does not match raise, naming the offender.
    """
    directory = Path(directory)
    paths = sorted(directory.glob(pattern))
    if not paths:
        raise FileNotFoundError(f"no files matching {pattern!r} in {directory}")
    ds = dataset or directory.name
    return [load_raw(p, shape, dtype=dtype, dataset=ds) for p in paths]
