"""Raw binary field I/O (the SDRBench interchange format).

SDRBench distributes fields as headerless little-endian binary arrays
(typically float32), with the grid dimensions given in the filename or an
accompanying note. These helpers load such files into :class:`Field`
objects — so when the real Miranda/NYX/CESM data is on disk, the whole
pipeline runs on it unchanged — and write fields back out for
interoperability with the reference compressors' CLIs.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.data.fields import Field


def load_raw(
    path: str | Path,
    shape: tuple[int, ...],
    dtype: str | np.dtype = np.float32,
    dataset: str | None = None,
    name: str | None = None,
) -> Field:
    """Load a headerless binary field (SDRBench convention).

    ``shape`` is the logical grid (C order, slowest axis first, matching
    SDRBench's ``<field>_<d1>x<d2>x<d3>.f32`` naming read right-to-left in
    the filename but passed here in array order).
    """
    path = Path(path)
    dtype = np.dtype(dtype)
    expected = int(np.prod(shape)) * dtype.itemsize
    actual = path.stat().st_size
    if actual != expected:
        raise ValueError(
            f"{path.name}: file has {actual} bytes but shape {shape} with "
            f"dtype {dtype} needs {expected}"
        )
    data = np.fromfile(path, dtype=dtype).reshape(shape)
    if not np.isfinite(data).all():
        raise ValueError(f"{path.name}: contains non-finite values")
    return Field(
        dataset=dataset or path.parent.name or "raw",
        name=name or path.stem,
        data=data,
    )


def save_raw(field: Field, path: str | Path) -> Path:
    """Write a field as headerless binary (inverse of :func:`load_raw`)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    field.data.tofile(path)
    return path


def load_raw_dataset(
    directory: str | Path,
    shape: tuple[int, ...],
    pattern: str = "*.f32",
    dtype: str | np.dtype = np.float32,
    dataset: str | None = None,
) -> list[Field]:
    """Load every matching raw file in a directory as one dataset.

    All fields must share ``shape`` (the SDRBench layout); files whose size
    does not match raise, naming the offender.
    """
    directory = Path(directory)
    paths = sorted(directory.glob(pattern))
    if not paths:
        raise FileNotFoundError(f"no files matching {pattern!r} in {directory}")
    ds = dataset or directory.name
    return [load_raw(p, shape, dtype=dtype, dataset=ds) for p in paths]
