"""4-point cubic spline interpolation predictor (SZ3's interpolation stage).

Along one axis, the interior prediction of the CAROL paper's Eq. (7):

    spline_i = -1/16 d_{i-3} + 9/16 d_{i-1} + 9/16 d_{i+1} - 1/16 d_{i+3}

predicts odd-indexed points from their even-indexed neighbours. Points too
close to the boundary fall back to 2-point linear interpolation, matching
SZ3's behaviour at block edges.
"""

from __future__ import annotations

import numpy as np

_C0 = -1.0 / 16.0
_C1 = 9.0 / 16.0


def spline_predict_axis(data: np.ndarray, axis: int) -> np.ndarray:
    """Predict every point from neighbours at +-1 and +-3 along ``axis``.

    Returns an array of the same shape; points within 3 of either edge use
    linear interpolation of the +-1 neighbours (or copy the single available
    neighbour at the very edge).
    """
    data = np.asarray(data, dtype=np.float64)
    n = data.shape[axis]
    moved = np.moveaxis(data, axis, 0)
    pred = np.empty_like(moved)
    if n == 1:
        pred[...] = moved
        return np.moveaxis(pred, 0, axis)

    # Linear fallback everywhere first (cheap), then overwrite the interior.
    pred[1 : n - 1] = 0.5 * (moved[: n - 2] + moved[2:n])
    pred[0] = moved[1]
    pred[n - 1] = moved[n - 2]
    if n > 6:
        pred[3 : n - 3] = (
            _C0 * moved[: n - 6]
            + _C1 * moved[2 : n - 4]
            + _C1 * moved[4 : n - 2]
            + _C0 * moved[6:n]
        )
    return np.moveaxis(pred, 0, axis)


def spline_residuals(data: np.ndarray) -> np.ndarray:
    """Sum over axes of |d - spline(d)| per point — Eq. (8)'s inner term.

    This is the quantity the MSD feature averages; the SZ3 compressor uses
    the per-axis predictions directly.
    """
    data = np.asarray(data, dtype=np.float64)
    out = np.zeros_like(data)
    for axis in range(data.ndim):
        out += np.abs(data - spline_predict_axis(data, axis))
    return out
