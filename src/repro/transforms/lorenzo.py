"""Multidimensional Lorenzo predictor.

The Lorenzo predictor estimates each point from its already-visited corner
neighbours: in d dimensions the prediction is the alternating-sign sum over
the 2^d - 1 proper corners of the unit hypercube behind the point. For 3-D
this is Eq. (6) of the CAROL paper. Out-of-domain neighbours are treated as
zero, matching SZ's convention.
"""

from __future__ import annotations

import itertools

import numpy as np


def lorenzo_predict(data: np.ndarray) -> np.ndarray:
    """Return the Lorenzo prediction for every point of ``data``.

    Vectorized: each corner term is a shifted view of a zero-padded copy, so
    the cost is 2^d - 1 array additions.
    """
    data = np.asarray(data)
    d = data.ndim
    if d < 1 or d > 4:
        raise ValueError(f"Lorenzo predictor supports 1-4 dimensions, got {d}")
    padded = np.zeros(tuple(s + 1 for s in data.shape), dtype=np.float64)
    padded[tuple(slice(1, None) for _ in range(d))] = data
    pred = np.zeros(data.shape, dtype=np.float64)
    for offsets in itertools.product((0, 1), repeat=d):
        k = sum(offsets)
        if k == 0:
            continue  # the point itself
        sign = -((-1) ** k)  # odd # of backward steps -> +, even -> -
        view = padded[tuple(slice(1 - o, padded.shape[i] - o) for i, o in enumerate(offsets))]
        if sign > 0:
            pred += view
        else:
            pred -= view
    return pred


def lorenzo_residuals(data: np.ndarray) -> np.ndarray:
    """``data - lorenzo_predict(data)`` — what SZ3's Lorenzo stage quantizes.

    Note the residual at each point uses *original* (not reconstructed)
    neighbours; the compressor proper re-runs prediction on reconstructed
    values to keep the error bound (see :mod:`repro.compressors.sz3`).
    """
    return np.asarray(data, dtype=np.float64) - lorenzo_predict(data)
