"""CDF 9/7 biorthogonal wavelet via lifting (SPERR's transform).

In-place lifting with whole-point symmetric extension (the JPEG2000 / SPERR
convention), valid for any signal length >= 2, any dimensionality, and any
number of decomposition levels. Forward and inverse are exact mutual
inverses up to floating-point rounding — verified by property tests.

Each 1-D pass is vectorized across all other axes: the lifting update for
one parity class is a single strided numpy statement, so a 3-D multilevel
transform costs a handful of array operations per axis per level.
"""

from __future__ import annotations

import numpy as np

# Standard CDF 9/7 lifting coefficients.
_ALPHA = -1.586134342059924
_BETA = -0.052980118572961
_GAMMA = 0.882911075530934
_DELTA = 0.443506852043971
# Scale making the low-pass DC gain sqrt(2) (near-orthonormal bands).
_SCALE = 1.149604398860241


def _lift_step(x: np.ndarray, coef: float, parity: int) -> None:
    """x[i] += coef * (x[i-1] + x[i+1]) for all i of given parity, axis 0.

    Symmetric extension: x[-1] -> x[1], x[n] -> x[n-2]. Neighbours always
    have the *other* parity, so the vectorized update has no read-after-write
    hazard.
    """
    n = x.shape[0]
    left = np.concatenate((x[1:2], x[: n - 1]), axis=0)
    right = np.concatenate((x[1:], x[n - 2 : n - 1]), axis=0)
    x[parity::2] += coef * (left[parity::2] + right[parity::2])


def _fwd_axis(x: np.ndarray) -> np.ndarray:
    """Forward 1-D transform along axis 0; returns [lowpass | highpass]."""
    n = x.shape[0]
    if n < 2:
        return x
    _lift_step(x, _ALPHA, 1)
    _lift_step(x, _BETA, 0)
    _lift_step(x, _GAMMA, 1)
    _lift_step(x, _DELTA, 0)
    low = x[0::2] * _SCALE
    high = x[1::2] * (1.0 / _SCALE)
    return np.concatenate((low, high), axis=0)


def _inv_axis(x: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_fwd_axis` along axis 0."""
    n = x.shape[0]
    if n < 2:
        return x
    half = (n + 1) // 2
    out = np.empty_like(x)
    out[0::2] = x[:half] * (1.0 / _SCALE)
    out[1::2] = x[half:] * _SCALE
    _lift_step(out, -_DELTA, 0)
    _lift_step(out, -_GAMMA, 1)
    _lift_step(out, -_BETA, 0)
    _lift_step(out, -_ALPHA, 1)
    return out


def _level_shape(shape: tuple[int, ...], level: int) -> tuple[int, ...]:
    """Extent of the low-pass corner after ``level`` decompositions."""
    out = list(shape)
    for _ in range(level):
        out = [(s + 1) // 2 if s >= 2 else s for s in out]
    return tuple(out)


def max_levels(shape: tuple[int, ...], min_extent: int = 8) -> int:
    """Decomposition levels until the low-pass corner reaches ``min_extent``."""
    levels = 0
    dims = list(shape)
    while all(s >= 2 * min_extent for s in dims if s > 1) and any(s > 1 for s in dims):
        dims = [(s + 1) // 2 if s >= 2 else s for s in dims]
        levels += 1
        if levels > 32:  # pragma: no cover - safety valve
            break
    return max(levels, 1)


def cdf97_forward(data: np.ndarray, levels: int) -> np.ndarray:
    """Multilevel Mallat decomposition. Returns the coefficient array.

    The level-``l`` low-pass corner occupies the leading
    ``ceil(shape / 2**l)`` extent of each axis.
    """
    coeffs = np.array(data, dtype=np.float64, copy=True)
    if levels < 0:
        raise ValueError("levels must be >= 0")
    for level in range(levels):
        region = tuple(slice(0, s) for s in _level_shape(coeffs.shape, level))
        sub = coeffs[region].copy()
        for axis in range(sub.ndim):
            if sub.shape[axis] < 2:
                continue
            moved = np.moveaxis(sub, axis, 0).copy()
            moved = _fwd_axis(moved)
            sub = np.moveaxis(moved, 0, axis)
        coeffs[region] = sub
    return coeffs


def cdf97_inverse(coeffs: np.ndarray, levels: int) -> np.ndarray:
    """Invert :func:`cdf97_forward`."""
    data = np.array(coeffs, dtype=np.float64, copy=True)
    for level in range(levels - 1, -1, -1):
        region = tuple(slice(0, s) for s in _level_shape(data.shape, level))
        sub = data[region].copy()
        for axis in range(sub.ndim - 1, -1, -1):
            if sub.shape[axis] < 2:
                continue
            moved = np.moveaxis(sub, axis, 0).copy()
            moved = _inv_axis(moved)
            sub = np.moveaxis(moved, 0, axis)
        data[region] = sub
    return data
