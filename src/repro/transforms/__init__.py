"""Numerical transforms and predictors used by the compressors.

- :mod:`repro.transforms.lorenzo` — multidimensional Lorenzo predictor
  (SZ3's low-order predictor, also feature MLD).
- :mod:`repro.transforms.spline` — 4-point cubic spline interpolation
  predictor (SZ3's interpolation stage, also feature MSD).
- :mod:`repro.transforms.wavelet` — CDF 9/7 biorthogonal lifting wavelet
  (SPERR's transform), multilevel, any dimensionality.
- :mod:`repro.transforms.zfp_transform` — ZFP's decorrelating block
  transform on 4^d blocks with its exact inverse.
"""

from repro.transforms.lorenzo import lorenzo_predict, lorenzo_residuals
from repro.transforms.spline import spline_predict_axis, spline_residuals
from repro.transforms.wavelet import cdf97_forward, cdf97_inverse
from repro.transforms.zfp_transform import zfp_block_forward, zfp_block_inverse

__all__ = [
    "lorenzo_predict",
    "lorenzo_residuals",
    "spline_predict_axis",
    "spline_residuals",
    "cdf97_forward",
    "cdf97_inverse",
    "zfp_block_forward",
    "zfp_block_inverse",
]
