"""ZFP's decorrelating block transform on 4^d blocks.

ZFP applies a non-orthogonal linear transform along each dimension of a
4x4x4 block (zfp documentation, "the transform"):

            ( 4  4  4  4 )
    1/16 *  ( 5  1 -1 -5 )
            (-4  4  4 -4 )
            (-2  6 -6  2 )

The reference implementation runs it in integer lifting form; we apply the
same matrix in float64 (with its exact matrix inverse), which keeps the
identical decorrelation behaviour while being trivially vectorizable over
all blocks at once with one einsum per dimension.

Also provides the total-degree coefficient ordering ZFP uses so that
low-frequency coefficients come first in the embedded stream.
"""

from __future__ import annotations

import numpy as np

_FWD = np.array(
    [
        [4.0, 4.0, 4.0, 4.0],
        [5.0, 1.0, -1.0, -5.0],
        [-4.0, 4.0, 4.0, -4.0],
        [-2.0, 6.0, -6.0, 2.0],
    ]
) / 16.0
_INV = np.linalg.inv(_FWD)


def _apply_along(blocks: np.ndarray, matrix: np.ndarray) -> np.ndarray:
    """Apply ``matrix`` along every block axis of ``blocks``.

    ``blocks`` has shape (nblocks, 4[, 4[, 4]]); axis 0 indexes blocks.
    """
    out = blocks
    for axis in range(1, blocks.ndim):
        out = np.moveaxis(np.tensordot(matrix, out, axes=([1], [axis])), 0, axis)
    return out


def zfp_block_forward(blocks: np.ndarray) -> np.ndarray:
    """Decorrelate a batch of 4^d blocks (batched over axis 0)."""
    return _apply_along(np.asarray(blocks, dtype=np.float64), _FWD)


def zfp_block_inverse(blocks: np.ndarray) -> np.ndarray:
    """Exactly invert :func:`zfp_block_forward` (up to fp rounding)."""
    return _apply_along(np.asarray(blocks, dtype=np.float64), _INV)


def coefficient_order(ndim: int) -> np.ndarray:
    """Flat indices of a 4^d block sorted by total frequency (degree).

    ZFP emits coefficients in order of increasing sum of per-axis indices so
    the embedded stream carries low frequencies first; ties broken by the
    flat index for determinism.
    """
    if ndim < 1 or ndim > 3:
        raise ValueError("ZFP blocks support 1-3 dimensions")
    grids = np.meshgrid(*([np.arange(4)] * ndim), indexing="ij")
    degree = np.zeros((4,) * ndim, dtype=np.int64)
    for g in grids:
        degree += g
    flat_degree = degree.ravel()
    return np.lexsort((np.arange(flat_degree.size), flat_degree))
