"""Command-line interface: ``python -m repro <command>``.

Commands mirror the library's workflow:

- ``datasets``  — list the synthetic datasets and their fields;
- ``estimate``  — print a ratio-vs-error-bound curve (full compressor,
  SECRE surrogate, or calibrated surrogate);
- ``train``     — fit a framework (CAROL or FXRZ) and save it;
- ``predict``   — predict the error bound for a target ratio with a saved
  model;
- ``compress``  — end-to-end: predict, compress, report achieved ratio;
- ``bench``     — run one named paper experiment and print its table;
- ``serve-bench`` — replay a synthetic request stream through
  ``repro.serve`` and report latency/throughput vs the unbatched
  baseline (exits non-zero if batched results diverge from sequential
  ones or the feature cache never hits);
- ``pack-bench`` — pack one field with ``--workers 1`` and ``--workers N``
  at the same wave size; exits non-zero on any byte divergence (and,
  optionally, below ``--min-speedup``);
- ``codec-bench`` — time the vectorized encoding kernels against their
  frozen scalar references on an SZ3 symbol fixture; exits non-zero on
  byte divergence (or below ``--min-speedup``) and writes the
  commit-stamped report to ``BENCH_codec.json`` at the repo root
  (``--check`` is the tiny CI variant: identity gate only, no file);
- ``read-bench`` — replay a seeded random-subvolume request stream
  through a :class:`repro.api.Catalog` of packed stores, serial vs
  cached vs parallel-with-cache under thread concurrency; exits
  non-zero on any byte divergence from the serial reference and writes
  ``BENCH_read.json`` at the repo root (``--check`` is the tiny CI
  variant: identity gate only, no file);
- ``load-bench`` — sweep offered load (open-loop Poisson rates and
  closed-loop client counts) through the :class:`repro.api.Gateway`
  over a service; exits non-zero if any gateway response diverges
  bitwise from direct ``service.predict`` calls and writes
  ``BENCH_serve.json`` (p50/p95/p99 latency, throughput, rejection
  rate, saturation point) at the repo root (``--check`` is the tiny CI
  variant: identity gate plus a micro sweep, no file);
- ``control-bench`` — pack the same fields with the :mod:`repro.control`
  tier plane ON and OFF: gates that a disabled control plane changes no
  bytes, that controller-ON packs are byte-identical across worker
  counts, and that packing an out-of-distribution field with control ON
  rescues the byte budget (≤10% whole-store drift) where OFF does not;
  writes ``BENCH_control.json`` at the repo root (``--check`` is the
  tiny CI variant: gates only, no file);
- ``trace-summary`` — aggregate a ``--trace`` JSON into a per-stage table.

``train``, ``compress``, ``bench``, and ``serve-bench`` accept ``--trace out.json``:
observability (:mod:`repro.obs`) is enabled for the run and the span
tree plus metrics are written to the given path on exit.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro import obs
from repro.compressors.registry import available_compressors
from repro.core.carol import CarolFramework
from repro.core.collection import TrainingCollector
from repro.core.fxrz import FxrzFramework
from repro.data.datasets import DATASET_NAMES, load_dataset, load_field
from repro.utils.serialization import load_framework, save_framework


def _add_trace_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument("--trace", default=None, metavar="OUT.json",
                   help="record an observability trace and write it here")


def _add_common_field_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("field", help="field path, e.g. miranda/viscosity")
    p.add_argument("--shape", type=int, nargs="+", default=None,
                   help="override the field's grid shape")
    p.add_argument("--seed", type=int, default=None, help="dataset seed")


def _load_field(args):
    kwargs = {}
    if args.shape:
        kwargs["shape"] = tuple(args.shape)
    if args.seed is not None:
        kwargs["seed"] = args.seed
    return load_field(args.field, **kwargs)


def cmd_datasets(_args) -> int:
    for name in DATASET_NAMES:
        fields = load_dataset(name, shape=(4, 8, 8) if name != "cesm" else (8, 16))
        names = ", ".join(f.name for f in fields)
        print(f"{name:<10} {len(fields):>2} fields: {names}")
    return 0


def cmd_estimate(args) -> int:
    field = _load_field(args)
    ebs = np.geomspace(args.eb_min, args.eb_max, args.n) * field.value_range
    mode = args.mode
    collector = TrainingCollector(
        args.compressor, mode=mode, rel_error_bounds=np.geomspace(args.eb_min, args.eb_max, args.n),
        calibration_points=args.calibration_points,
    )
    rec = collector.collect_field(field)
    print(f"# {field.path} shape={field.data.shape} compressor={args.compressor} mode={mode}")
    print(f"# collected in {rec.collect_seconds:.3f}s")
    print(f"{'error_bound':>14} {'ratio':>10}")
    for eb, ratio in zip(rec.error_bounds, rec.ratios):
        print(f"{eb:>14.6g} {ratio:>10.3f}")
    return 0


def cmd_train(args) -> int:
    if args.config:
        from repro.core.config import FrameworkConfig

        cfg = FrameworkConfig.load(args.config)
        fw = cfg.build()
        fields = cfg.load_training_fields()
    else:
        fields = []
        for ds in args.datasets:
            kwargs = {"shape": tuple(args.shape)} if args.shape else {}
            fields.extend(load_dataset(ds, **kwargs))
        cls = CarolFramework if args.framework == "carol" else FxrzFramework
        fw = cls(
            compressor=args.compressor,
            rel_error_bounds=np.geomspace(args.eb_min, args.eb_max, args.n),
            n_iter=args.iters,
            cv=args.cv,
        )
    report = fw.fit(fields)
    print(
        f"{fw.name} fitted on {len(fields)} fields: "
        f"collection {report.collection_seconds:.2f}s, "
        f"training {report.training_seconds:.2f}s, {report.n_rows} rows"
    )
    path = save_framework(args.out, fw)
    print(f"saved to {path}")
    return 0


def cmd_predict(args) -> int:
    fw = load_framework(args.model)
    field = _load_field(args)
    pred = fw.predict_error_bound(field.data, args.ratio)
    print(f"predicted error bound: {pred.error_bound:.6g}")
    print(f"(features {np.round(pred.features, 5).tolist()}, "
          f"extraction {pred.feature_seconds*1000:.2f} ms, "
          f"inference {pred.inference_seconds*1000:.2f} ms)")
    return 0


def cmd_compress(args) -> int:
    fw = load_framework(args.model)
    field = _load_field(args)
    result, pred = fw.compress_to_ratio(field.data, args.ratio)
    err = 100.0 * abs(result.ratio - args.ratio) / args.ratio
    print(f"requested ratio : {args.ratio:.2f}")
    print(f"predicted eb    : {pred.error_bound:.6g}")
    print(f"achieved ratio  : {result.ratio:.2f} ({err:.1f}% off)")
    print(f"compressed size : {result.compressed_bytes} bytes "
          f"(from {result.original_bytes})")
    if args.out:
        with open(args.out, "wb") as fh:
            fh.write(result.payload)
        print(f"payload written to {args.out}")
    return 0


def cmd_serve_bench(args) -> int:
    import time

    from repro.api import FrameworkOptions, Service, ServiceOptions

    if args.model:
        fw = load_framework(args.model)
    else:
        train = load_dataset(args.dataset, shape=tuple(args.shape))
        opts = FrameworkOptions(
            compressor=args.compressor,
            rel_error_bounds=tuple(np.geomspace(args.eb_min, args.eb_max, args.n)),
            n_iter=args.iters,
            cv=2,
        )
        fw = opts.build(args.framework)
        fw.fit(train)

    rng = np.random.default_rng(args.seed)
    pool_fields = load_dataset(args.dataset, shape=tuple(args.shape), seed=args.seed + 1)
    datas = [f.data for f in pool_fields[: max(1, args.fields)]]
    ratio_choices = np.linspace(2.0, 32.0, 7)
    stream = [
        (datas[int(rng.integers(len(datas)))], float(rng.choice(ratio_choices)))
        for _ in range(args.requests)
    ]
    print(
        f"serve-bench: {len(stream)} requests over {len(datas)} unique fields, "
        f"batch={args.batch}, workers={args.workers}, cache={args.cache}"
    )

    # Unbatched baseline: one full predict() per request, no cache.
    base_lat: list[float] = []
    base_ebs: list[float] = []
    t0 = time.perf_counter()
    for data, ratio in stream:
        t = time.perf_counter()
        base_ebs.append(fw.predict_error_bound(data, ratio).error_bound)
        base_lat.append(time.perf_counter() - t)
    base_wall = time.perf_counter() - t0

    # Batched + cached service over the identical stream.
    service = Service(
        fw,
        options=ServiceOptions(
            cache_entries=args.cache,
            workers=args.workers,
            timeout_seconds=args.timeout,
        ),
    )
    serve_lat: list[float] = []
    serve_ebs: list[float] = []
    t0 = time.perf_counter()
    with service:
        for start in range(0, len(stream), args.batch):
            chunk = stream[start : start + args.batch]
            t = time.perf_counter()
            preds = service.predict_batch(chunk)
            elapsed = time.perf_counter() - t
            serve_lat.extend([elapsed / len(chunk)] * len(chunk))
            serve_ebs.extend(p.error_bound for p in preds)
        stats = service.stats()
    serve_wall = time.perf_counter() - t0

    def _line(name: str, lat: list[float], wall: float) -> None:
        p50, p99 = (float(np.percentile(lat, q)) * 1e3 for q in (50, 99))
        print(
            f"{name:<9} {len(lat) / wall:>9.1f} req/s   "
            f"p50 {p50:>8.3f} ms   p99 {p99:>8.3f} ms   (total {wall:.3f}s)"
        )

    _line("baseline", base_lat, base_wall)
    _line("service", serve_lat, serve_wall)
    print(f"speedup   {base_wall / serve_wall:>9.1f}x throughput")
    cache = stats.cache
    print(
        f"cache     {cache.hits} hits / {cache.misses} misses "
        f"({100.0 * cache.hit_rate:.1f}% hit rate), "
        f"{cache.evictions} evictions"
    )
    if args.workers:
        pool = stats.pool
        print(
            f"pool      {pool.completed} tasks, {pool.fallbacks} fallbacks, "
            f"{pool.timeouts} timeouts"
        )

    ok = True
    mismatch = [abs(a - b) for a, b in zip(base_ebs, serve_ebs)]
    if any(m != 0.0 for m in mismatch):
        print(f"FAIL: batched error bounds diverge from baseline (max {max(mismatch):g})")
        ok = False
    else:
        print("error bounds: bitwise-identical to baseline")
    if len(stream) > len(datas) and cache.hits == 0 and args.cache > 0:
        print("FAIL: repeated-field stream produced zero cache hits")
        ok = False
    return 0 if ok else 1


def cmd_load_bench(args) -> int:
    """Gateway saturation benchmark: sweep offered load, gate determinism.

    Trains (or loads) a framework, proves every gateway response is
    bitwise-identical to direct ``service.predict`` calls under several
    coalescing configurations, calibrates the warm batched capacity, and
    sweeps open-loop Poisson rates plus closed-loop client counts,
    writing ``BENCH_serve.json`` with the located saturation point. Exit
    1 on any determinism divergence.

    ``--check`` is the CI mode: a tiny sweep keeps the identity gate
    while dropping the timing cost; nothing is written.
    """
    from repro.load.bench import format_report, run_load_bench, write_report

    if args.model:
        fw = load_framework(args.model)
    else:
        from repro.api import FrameworkOptions

        train = load_dataset(args.dataset, shape=tuple(args.train_shape))
        opts = FrameworkOptions(
            compressor=args.compressor,
            rel_error_bounds=tuple(np.geomspace(args.eb_min, args.eb_max, args.n)),
            n_iter=args.iters,
            cv=2,
        )
        fw = opts.build(args.framework)
        fw.fit(train)

    kwargs = dict(
        shape=tuple(args.shape),
        n_fields=args.fields,
        n_requests=args.requests,
        repetitions=args.reps,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        max_pending=args.max_pending,
        cache_entries=args.cache,
        seed=args.seed,
    )
    if args.check:
        kwargs.update(
            shape=(8, 12, 12), n_fields=2, n_requests=16, repetitions=1,
            rate_multiples=(0.5, 4.0), closed_clients=(2,),
            identity_requests=12,
        )
    report = run_load_bench(fw, **kwargs)
    print(format_report(report))
    if not report["identical"]:
        bad = [n for n, c in report["identity"]["configs"].items() if not c["identical"]]
        print(f"FAIL: gateway responses diverge from service.predict in: {', '.join(bad)}")
        if not args.check:
            print("report not written (identity gate failed)")
        return 1
    if not args.check:
        out = write_report(report, args.out)
        print(f"report written to {out}")
    return 0


def cmd_control_bench(args) -> int:
    """Paired ON/OFF control-plane benchmark.

    Proves three gates — neutrality (a ``control=None`` pack is
    byte-identical to a plain ``StoreOptions`` pack), determinism
    (controller-ON packs are byte-identical across worker counts at a
    pinned wave size), and rescue (packing an out-of-distribution field
    with control ON lands within 10% whole-store drift where OFF does
    not) — and reports the fitted ON/OFF wall-time ratio plus the real
    compressions each rescue spent. Writes ``BENCH_control.json``; exit
    1 when any gate fails.

    ``--check`` is the CI mode: a tiny fixture keeps all three gates
    while dropping the timing cost; nothing is written.
    """
    import itertools

    from repro.control.bench import format_report, run_control_bench, write_report

    kwargs = dict(
        shape=tuple(args.shape),
        chunk=tuple(args.chunk),
        ratio=args.ratio,
        wave_size=args.wave_size,
        workers=tuple(args.workers),
        ood_scale=args.ood_scale,
        t2_std=args.t2_std,
        t2_pressure=args.t2_pressure,
        refine_compressions=args.refine_compressions,
        reps=args.reps,
        seed=args.seed,
    )
    if args.check:
        # Target 3, not the full-bench 5: sz3 tops out near ratio 18 on
        # the tiny 512-element chunks, and the un-escalatable first wave
        # (2 of 8 chunks at OOD ratio ~1.2) must leave the closed-loop
        # retargets for the remaining chunks reachable below that
        # ceiling for a rescue to be possible at all.
        kwargs.update(
            shape=(16, 16, 16), chunk=(8, 8, 8), ratio=3.0, wave_size=2,
            workers=(0, 2), reps=1,
        )

    if args.model:
        fw = load_framework(args.model)
    else:
        from repro.api import FrameworkOptions
        from repro.data import Field, load_field

        # Train on the chunks of a *sibling* field — same generator and
        # shape as the bench fixture, different seed. A packed store
        # predicts per chunk, and chunks of a large field have different
        # statistics than standalone small fields: a model trained on
        # the latter is biased on most chunks, and the fitted scenario
        # would (correctly) escalate everything.
        shape, chunk = kwargs["shape"], kwargs["chunk"]
        sibling = load_field("miranda/pressure", shape=shape, seed=args.seed + 1)
        starts = [range(0, dim, c) for dim, c in zip(shape, chunk)]
        train = [
            Field(
                dataset="miranda",
                name=f"train-{i}",
                data=np.ascontiguousarray(
                    sibling.data[tuple(slice(s, s + c) for s, c in zip(o, chunk))]
                ),
            )
            for i, o in enumerate(itertools.product(*starts))
        ]
        opts = FrameworkOptions(
            compressor=args.compressor,
            rel_error_bounds=tuple(np.geomspace(args.eb_min, args.eb_max, args.n)),
            n_iter=args.iters,
            cv=2,
        )
        fw = opts.build(args.framework)
        fw.fit(train)

    report = run_control_bench(fw, **kwargs)
    print(format_report(report))
    if not report["ok"]:
        bad = [name for name, passed in report["gates"].items() if not passed]
        print(f"FAIL: control-bench gates failed: {', '.join(bad)}")
        if not args.check:
            print("report not written (gates failed)")
        return 1
    if not args.check:
        out = write_report(report, args.out)
        print(f"report written to {out}")
    return 0


def _store_source(args):
    """Resolve a store-pack source: an on-disk raw file (memmapped) or a
    synthetic ``dataset/field`` path."""
    from pathlib import Path

    from repro.store import open_raw

    if Path(args.source).exists():
        if not args.shape:
            raise SystemExit("store-pack: --shape is required for raw file sources")
        return open_raw(args.source, tuple(args.shape), dtype=args.dtype)
    kwargs = {}
    if args.shape:
        kwargs["shape"] = tuple(args.shape)
    if args.seed is not None:
        kwargs["seed"] = args.seed
    return load_field(args.source, **kwargs).data


def cmd_store_pack(args) -> int:
    from repro.store import StoreOptions, pack

    fw = load_framework(args.model)
    source = _store_source(args)
    control = None
    if args.control:
        from repro.control import ControlOptions

        control = ControlOptions(
            t2_std=args.t2_std,
            t2_pressure=args.t2_pressure,
            risk_budget=args.risk_budget,
            refine_compressions=args.refine_compressions,
        )
    options = StoreOptions(
        chunk_shape=tuple(args.chunk) if args.chunk else None,
        chunk_elements=args.chunk_elements,
        closed_loop=not args.open_loop,
        safety=args.safety,
        workers=args.workers,
        wave_size=args.wave_size,
        control=control,
    )
    report = pack(args.out, source, fw, args.ratio, options=options)
    print(report.summary())
    worst = max(
        report.chunks, key=lambda c: abs(c.achieved_ratio - c.target_ratio) / c.target_ratio
    )
    print(
        f"chunks: {report.n_chunks} x {options.grid_for(source.shape).chunk_shape}, "
        f"worst chunk {worst.coords} achieved {worst.achieved_ratio:.2f} "
        f"(target {worst.target_ratio:.2f})"
    )
    return 0


def cmd_pack_bench(args) -> int:
    """Serial-vs-parallel ``.rps`` packing comparison.

    Packs one field with ``--workers 1`` and ``--workers N`` at the same
    wave size, asserts the outputs are byte-identical (exit 1 on any
    divergence — the determinism contract of the wave scheduler), and
    reports the wall-clock speedup. ``--min-speedup`` turns the speedup
    into a second failure condition (leave at 0 on single-core boxes,
    where process parallelism cannot win by construction).
    """
    import os
    import time
    from pathlib import Path

    from repro.store import StoreOptions, pack

    if args.model:
        fw = load_framework(args.model)
    else:
        from repro.api import FrameworkOptions

        train = load_dataset(args.dataset, shape=tuple(args.train_shape))
        opts = FrameworkOptions(
            compressor=args.compressor,
            rel_error_bounds=tuple(np.geomspace(args.eb_min, args.eb_max, args.n)),
            n_iter=args.iters,
            cv=2,
        )
        fw = opts.build(args.framework)
        fw.fit(train)

    source = _store_source(args)
    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    wave = args.wave_size if args.wave_size is not None else 8
    chunk = tuple(args.chunk) if args.chunk else None

    def _pack(workers: int) -> tuple[Path, float, object]:
        path = out_dir / f"pack-bench-w{workers}.rps"
        options = StoreOptions(
            chunk_shape=chunk,
            chunk_elements=args.chunk_elements,
            wave_size=wave,
            workers=workers,
        )
        t0 = time.perf_counter()
        report = pack(path, source, fw, args.ratio, options=options)
        return path, time.perf_counter() - t0, report

    print(
        f"pack-bench: {args.source} shape={tuple(source.shape)} "
        f"compressor={fw.compressor_name} ratio={args.ratio} wave_size={wave} "
        f"(host has {os.cpu_count()} cpus)"
    )
    serial_path, serial_s, serial_report = _pack(1)
    parallel_path, parallel_s, parallel_report = _pack(args.workers)
    print(f"workers=1 {serial_s:>8.3f}s   {serial_report.summary()}")
    print(f"workers={args.workers} {parallel_s:>7.3f}s   {parallel_report.summary()}")

    ok = True
    if serial_path.read_bytes() != parallel_path.read_bytes():
        print(
            f"FAIL: workers={args.workers} output diverges from workers=1 "
            "(wave determinism broken)"
        )
        ok = False
    else:
        print(f"outputs byte-identical across worker counts ({serial_path.stat().st_size} bytes)")
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    print(f"speedup   {speedup:>8.2f}x wall-clock at {args.workers} workers")
    if args.min_speedup > 0 and speedup < args.min_speedup:
        print(f"FAIL: speedup {speedup:.2f}x below required {args.min_speedup:.2f}x")
        ok = False
    return 0 if ok else 1


def cmd_codec_bench(args) -> int:
    """Vectorized-vs-reference encoding kernel benchmark.

    Times encode and decode of every codec in :mod:`repro.encoding` against
    the frozen scalar oracles in :mod:`repro.encoding.reference` on a
    deterministic SZ3 symbol-stream fixture, and every fused compressor
    pipeline (sz3/szx/sperr) end-to-end against the frozen whole-array
    oracles in :mod:`repro.compressors.reference`, diffing payloads (and
    compressor metadata + decoded arrays) byte-for-byte. Exit 1 on any
    divergence, when the composed SZ3 lossless stage falls below
    ``--min-speedup``, or when no fused compressor reaches
    ``--min-compressor-speedup`` on compress.

    ``--check`` is the CI mode: a tiny fixture and one rep keep the
    byte-identity gates while dropping the timing cost; nothing is written.
    """
    from repro.bench.codec_bench import format_report, run_codec_bench, write_report

    shape = tuple(args.shape)
    reps = args.reps
    if args.check:
        shape = (16, 16, 16)
        reps = 1
    report = run_codec_bench(
        args.field, shape, rel_eb=args.rel_eb, reps=reps, seed=args.seed
    )
    print(format_report(report))
    ok = True
    if not report["identical"]:
        bad = [n for n, c in report["codecs"].items() if not c["identical"]]
        print(f"FAIL: byte divergence from reference in: {', '.join(bad)}")
        ok = False
    if not args.check:
        gate = report["codecs"]["sz3_lossless"]["speedup_total"]
        if args.min_speedup > 0 and gate < args.min_speedup:
            print(
                f"FAIL: sz3_lossless speedup {gate:.2f}x below "
                f"required {args.min_speedup:.2f}x"
            )
            ok = False
        best_compressor = max(
            report["compressors"].values(),
            key=lambda c: c["speedup_compress"],
        )["speedup_compress"]
        if args.min_compressor_speedup > 0 and best_compressor < args.min_compressor_speedup:
            print(
                f"FAIL: best fused-compressor compress speedup "
                f"{best_compressor:.2f}x below required "
                f"{args.min_compressor_speedup:.2f}x"
            )
            ok = False
        if ok:
            out = write_report(report, args.out)
            print(f"report written to {out}")
        else:
            print("report not written (gates failed)")
    return 0 if ok else 1


def cmd_read_bench(args) -> int:
    """Concurrent sharded-read benchmark over a store catalog.

    Packs a fixture of ``.rps`` stores, replays one seeded
    random-subvolume request stream through serial, cached, and
    parallel-with-cache catalog configurations, and digest-compares every
    response to the serial reference; then streams a full-store scan of
    every fixture store through ``read_iter`` (cold cache, prefetch on)
    and digest-compares the assembled tiles to a materialized ``read()``.
    Exit 1 on any byte divergence, or if a stream's peak resident bytes
    exceed twice its ``max_inflight`` tile budget.

    ``--check`` is the CI mode: a tiny fixture keeps the byte-identity
    and bounded-memory gates while dropping the timing cost; nothing is
    written.
    """
    from repro.bench.read_bench import format_report, run_read_bench, write_report

    if args.model:
        fw = load_framework(args.model)
    else:
        from repro.api import FrameworkOptions

        train = load_dataset(args.dataset, shape=tuple(args.train_shape))
        opts = FrameworkOptions(
            compressor=args.compressor,
            rel_error_bounds=tuple(np.geomspace(args.eb_min, args.eb_max, args.n)),
            n_iter=args.iters,
            cv=2,
        )
        fw = opts.build(args.framework)
        fw.fit(train)

    kwargs = dict(
        n_stores=args.stores,
        shape=tuple(args.shape),
        chunk=tuple(args.chunk),
        ratio=args.ratio,
        n_reads=args.reads,
        read_shape=tuple(args.read_shape),
        workers=args.workers,
        cache_bytes=args.cache_bytes,
        concurrency=args.concurrency,
        max_inflight=args.max_inflight,
        seed=args.seed,
    )
    if args.check:
        kwargs.update(
            n_stores=2, shape=(16, 16, 16), chunk=(8, 8, 8),
            n_reads=12, read_shape=(8, 8, 8), workers=min(args.workers, 2),
        )
    report = run_read_bench(fw, **kwargs)
    print(format_report(report))
    ok = True
    if not report["identical"]:
        bad = [n for n, c in report["configs"].items() if not c["identical"]]
        if not report["streaming"]["identical"]:
            bad.append("streaming")
        print(f"FAIL: byte divergence from reference in: {', '.join(bad)}")
        ok = False
    if not report["streaming"]["bounded"]:
        s = report["streaming"]
        print(
            f"FAIL: streaming peak resident bytes {s['peak_resident_bytes']} "
            f"exceed 2x budget {s['budget_bytes']}"
        )
        ok = False
    if not ok:
        if not args.check:
            print("report not written (gates failed)")
        return 1
    if not args.check:
        out = write_report(report, args.out)
        print(f"report written to {out}")
    return 0


def cmd_store_info(args) -> int:
    from repro.store import Store

    with Store(args.store, verify=False) as st:
        info = st.info()
        for key in (
            "path", "shape", "dtype", "compressor", "chunk_shape", "grid_shape",
            "n_chunks", "original_bytes", "stored_bytes", "target_ratio",
            "achieved_ratio", "closed_loop",
        ):
            value = info[key]
            if isinstance(value, float):
                value = f"{value:.3f}"
            print(f"{key:<16} {value}")
        print(
            f"{'error_bound':<16} [{info['error_bound_min']:.6g}, {info['error_bound_max']:.6g}]"
        )
        print(
            f"{'chunk_ratio':<16} [{info['chunk_ratio_min']:.3f}, {info['chunk_ratio_max']:.3f}]"
        )
        if args.chunks:
            print(f"{'coords':<14} {'offset':>10} {'nbytes':>9} {'error_bound':>13} "
                  f"{'target':>8} {'achieved':>9}")
            for entry in st.manifest["chunks"]:
                print(
                    f"{str(tuple(entry['coords'])):<14} {entry['offset']:>10} "
                    f"{entry['nbytes']:>9} {entry['error_bound']:>13.6g} "
                    f"{entry['target_ratio']:>8.2f} {entry['achieved_ratio']:>9.2f}"
                )
    return 0


def cmd_store_unpack(args) -> int:
    from repro.store import Store

    with Store(args.store) as st:
        data = st.read()  # verifies every chunk checksum on the way
        print(
            f"unpacked {st.path.name}: shape {st.shape}, dtype {st.dtype}, "
            f"{st.n_chunks} chunks, achieved ratio {st.achieved_ratio:.2f}"
        )
        if args.out:
            from repro.data.fields import Field
            from repro.data.io import save_raw

            out = save_raw(Field("store", "unpacked", data), args.out)
            print(f"raw field written to {out}")
        if args.verify_against:
            original = np.fromfile(args.verify_against, dtype=st.dtype).reshape(st.shape)
            worst_excess = 0.0
            for entry in st.manifest["chunks"]:
                chunk = st.grid.chunk_at(tuple(entry["coords"]))
                err = float(
                    np.max(
                        np.abs(
                            data[chunk.slices].astype(np.float64)
                            - original[chunk.slices].astype(np.float64)
                        )
                    )
                )
                bound = float(entry["error_bound"]) * (1.0 + 1e-9)
                worst_excess = max(worst_excess, err - bound)
                if err > bound:
                    print(
                        f"FAIL: chunk {tuple(entry['coords'])} error {err:.6g} exceeds "
                        f"bound {entry['error_bound']:.6g}"
                    )
                    return 1
            print("round-trip error within every chunk's recorded bound")
    return 0


def cmd_trace_summary(args) -> int:
    try:
        payload = obs.load_trace(args.trace_file)
    except (OSError, ValueError, KeyError) as exc:
        print(f"cannot read trace {args.trace_file!r}: {exc}", file=sys.stderr)
        return 2
    print(obs.format_summary(payload["spans"], payload.get("metrics")))
    return 0


def cmd_bench(args) -> int:
    from repro.bench import experiments, experiments_model
    from repro.bench.harness import get_scale

    registry = {}
    for mod in (experiments, experiments_model):
        for name in dir(mod):
            if name.startswith(("fig", "tab", "ablation")):
                registry[name] = getattr(mod, name)
    if args.experiment not in registry:
        print(f"unknown experiment {args.experiment!r}; available:", file=sys.stderr)
        for name in sorted(registry):
            print(f"  {name}", file=sys.stderr)
        return 2
    print(registry[args.experiment](get_scale()))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="CAROL ratio-controlled compression (ICPP'24 reproduction)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list synthetic datasets").set_defaults(func=cmd_datasets)

    p = sub.add_parser("estimate", help="print a ratio-vs-error-bound curve")
    _add_common_field_args(p)
    p.add_argument("--compressor", choices=available_compressors(), default="sz3")
    p.add_argument("--mode", choices=("full", "secre", "calibrated"), default="calibrated")
    p.add_argument("--eb-min", type=float, default=1e-3)
    p.add_argument("--eb-max", type=float, default=1e-1)
    p.add_argument("-n", type=int, default=10, help="grid size")
    p.add_argument("--calibration-points", type=int, default=4)
    p.set_defaults(func=cmd_estimate)

    p = sub.add_parser("train", help="fit a framework and save it")
    p.add_argument("--config", default=None,
                   help="JSON FrameworkConfig; overrides the flags below")
    p.add_argument("--framework", choices=("carol", "fxrz"), default="carol")
    p.add_argument("--compressor", choices=available_compressors(), default="sz3")
    p.add_argument("--datasets", nargs="+", default=["miranda"])
    p.add_argument("--shape", type=int, nargs="+", default=None)
    p.add_argument("--eb-min", type=float, default=1e-3)
    p.add_argument("--eb-max", type=float, default=1e-1)
    p.add_argument("-n", type=int, default=10)
    p.add_argument("--iters", type=int, default=6)
    p.add_argument("--cv", type=int, default=3)
    p.add_argument("--out", required=True, help="output .npz model path")
    _add_trace_arg(p)
    p.set_defaults(func=cmd_train)

    p = sub.add_parser("predict", help="predict an error bound for a target ratio")
    p.add_argument("--model", required=True)
    p.add_argument("--ratio", type=float, required=True)
    _add_common_field_args(p)
    p.set_defaults(func=cmd_predict)

    p = sub.add_parser("compress", help="compress a field to a target ratio")
    p.add_argument("--model", required=True)
    p.add_argument("--ratio", type=float, required=True)
    p.add_argument("--out", default=None, help="write the payload here")
    _add_common_field_args(p)
    _add_trace_arg(p)
    p.set_defaults(func=cmd_compress)

    p = sub.add_parser("bench", help="run one paper experiment")
    p.add_argument("experiment", help="e.g. fig2_surrogate_curves, tab5_calibration")
    _add_trace_arg(p)
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser(
        "serve-bench",
        help="replay a synthetic request stream through the serving layer",
    )
    p.add_argument("--model", default=None, help="saved .npz framework; trains one if omitted")
    p.add_argument("--framework", choices=("carol", "fxrz"), default="carol")
    p.add_argument("--compressor", choices=available_compressors(), default="szx")
    p.add_argument("--dataset", choices=DATASET_NAMES, default="miranda")
    p.add_argument("--shape", type=int, nargs="+", default=[12, 16, 16])
    p.add_argument("--requests", type=int, default=200, help="stream length")
    p.add_argument("--fields", type=int, default=4, help="distinct fields in the stream")
    p.add_argument("--batch", type=int, default=16, help="requests per predict_batch call")
    p.add_argument("--workers", type=int, default=0, help="worker processes (0 = in-process)")
    p.add_argument("--cache", type=int, default=256, help="feature-cache entries (0 disables)")
    p.add_argument("--timeout", type=float, default=30.0, help="per-task worker timeout (s)")
    p.add_argument("--eb-min", type=float, default=1e-3)
    p.add_argument("--eb-max", type=float, default=1e-1)
    p.add_argument("-n", type=int, default=5, help="training error-bound grid size")
    p.add_argument("--iters", type=int, default=4, help="training search iterations")
    p.add_argument("--seed", type=int, default=0)
    _add_trace_arg(p)
    p.set_defaults(func=cmd_serve_bench)

    p = sub.add_parser(
        "store-pack",
        help="pack a field into a chunked .rps store under a byte budget",
    )
    p.add_argument("source", help="raw file path (with --shape) or synthetic dataset/field")
    p.add_argument("--model", required=True, help="saved .npz framework")
    p.add_argument("--ratio", type=float, required=True, help="whole-store target ratio")
    p.add_argument("--out", required=True, help="output .rps path")
    p.add_argument("--shape", type=int, nargs="+", default=None,
                   help="grid shape (required for raw file sources)")
    p.add_argument("--dtype", default="float32", help="raw source dtype")
    p.add_argument("--seed", type=int, default=None, help="synthetic dataset seed")
    p.add_argument("--chunk", type=int, nargs="+", default=None, help="chunk shape")
    p.add_argument("--chunk-elements", type=int, default=32768,
                   help="target elements per chunk when --chunk is omitted")
    p.add_argument("--open-loop", action="store_true",
                   help="disable closed-loop budget redistribution")
    p.add_argument("--safety", type=float, default=0.0,
                   help="prediction bias toward overshooting each chunk's ratio")
    p.add_argument("--workers", type=int, default=0,
                   help="worker processes per wave (0 = in-process)")
    p.add_argument("--wave-size", type=int, default=None,
                   help="chunks per closed-loop re-target wave "
                        "(default: 1 without workers, 8 with)")
    p.add_argument("--control", action="store_true",
                   help="enable the repro.control tier plane: low-confidence or "
                        "budget-drifting chunks escalate to warm FRaZ refinement")
    p.add_argument("--t2-std", type=float, default=0.25,
                   help="model spread (log-eb std) at which a chunk escalates")
    p.add_argument("--t2-pressure", type=float, default=0.10,
                   help="committed budget drift at which chunks escalate")
    p.add_argument("--risk-budget", type=int, default=16,
                   help="max escalations per pack (consumed in chunk order)")
    p.add_argument("--refine-compressions", type=int, default=4,
                   help="real-compression cap per escalated chunk")
    _add_trace_arg(p)
    p.set_defaults(func=cmd_store_pack)

    p = sub.add_parser(
        "pack-bench",
        help="pack the same field with 1 and N workers; fail on byte divergence",
    )
    p.add_argument("source", nargs="?", default="miranda/pressure",
                   help="raw file path (with --shape) or synthetic dataset/field")
    p.add_argument("--model", default=None, help="saved .npz framework; trains one if omitted")
    p.add_argument("--framework", choices=("carol", "fxrz"), default="carol")
    p.add_argument("--compressor", choices=available_compressors(), default="sz3")
    p.add_argument("--dataset", choices=DATASET_NAMES, default="miranda",
                   help="training dataset when no --model is given")
    p.add_argument("--train-shape", type=int, nargs="+", default=[16, 32, 64],
                   help="training field shape (chunk-sized) when training")
    p.add_argument("--ratio", type=float, default=10.0, help="whole-store target ratio")
    p.add_argument("--shape", type=int, nargs="+", default=[64, 128, 128],
                   help="bench field shape (required for raw file sources)")
    p.add_argument("--dtype", default="float32", help="raw source dtype")
    p.add_argument("--seed", type=int, default=3, help="synthetic dataset seed")
    p.add_argument("--chunk", type=int, nargs="+", default=None, help="chunk shape")
    p.add_argument("--chunk-elements", type=int, default=32768,
                   help="target elements per chunk when --chunk is omitted")
    p.add_argument("--workers", type=int, default=4, help="parallel worker count")
    p.add_argument("--wave-size", type=int, default=None, help="chunks per wave (default 8)")
    p.add_argument("--out-dir", default=".", help="where the two .rps files land")
    p.add_argument("--min-speedup", type=float, default=0.0,
                   help="also fail unless parallel is at least this much faster "
                        "(0 disables; keep 0 on single-core machines)")
    p.add_argument("--eb-min", type=float, default=1e-3)
    p.add_argument("--eb-max", type=float, default=3e-1)
    p.add_argument("-n", type=int, default=6, help="training error-bound grid size")
    p.add_argument("--iters", type=int, default=4, help="training search iterations")
    _add_trace_arg(p)
    p.set_defaults(func=cmd_pack_bench)

    p = sub.add_parser(
        "codec-bench",
        help="time vectorized encoding kernels vs their scalar references; "
             "fail on byte divergence",
    )
    p.add_argument("field", nargs="?", default="miranda/viscosity",
                   help="synthetic dataset/field used to build the symbol fixture")
    p.add_argument("--shape", type=int, nargs="+", default=[64, 64, 64],
                   help="fixture field shape")
    p.add_argument("--rel-eb", type=float, default=1e-3,
                   help="relative error bound of the fixture compression")
    p.add_argument("--reps", type=int, default=7,
                   help="timing repetitions (best-of, interleaved with reference)")
    p.add_argument("--seed", type=int, default=None, help="synthetic dataset seed")
    p.add_argument("--out", default=None,
                   help="report path (default: BENCH_codec.json at the repo root)")
    p.add_argument("--min-speedup", type=float, default=0.0,
                   help="fail unless the composed sz3_lossless stage is at least "
                        "this much faster than the reference (0 disables)")
    p.add_argument("--min-compressor-speedup", type=float, default=0.0,
                   help="fail unless at least one fused compressor pipeline "
                        "compresses this much faster than its whole-array "
                        "reference (0 disables)")
    p.add_argument("--check", action="store_true",
                   help="CI mode: tiny fixture, one rep, identity gates only "
                        "(kernels and whole compressors), no report written")
    _add_trace_arg(p)
    p.set_defaults(func=cmd_codec_bench)

    p = sub.add_parser(
        "read-bench",
        help="replay random subvolume reads through a store catalog; "
             "fail on byte divergence from the serial reference",
    )
    p.add_argument("--model", default=None, help="saved .npz framework; trains one if omitted")
    p.add_argument("--framework", choices=("carol", "fxrz"), default="carol")
    p.add_argument("--compressor", choices=available_compressors(), default="szx")
    p.add_argument("--dataset", choices=DATASET_NAMES, default="miranda",
                   help="training dataset when no --model is given")
    p.add_argument("--train-shape", type=int, nargs="+", default=[16, 32, 64],
                   help="training field shape (chunk-sized) when training")
    p.add_argument("--stores", type=int, default=3, help="stores in the fixture catalog")
    p.add_argument("--shape", type=int, nargs="+", default=[32, 48, 48],
                   help="fixture field shape")
    p.add_argument("--chunk", type=int, nargs="+", default=[8, 16, 16],
                   help="fixture chunk shape")
    p.add_argument("--ratio", type=float, default=8.0, help="fixture pack target ratio")
    p.add_argument("--reads", type=int, default=48, help="subvolume requests in the stream")
    p.add_argument("--read-shape", type=int, nargs="+", default=[16, 24, 24],
                   help="subvolume request shape")
    p.add_argument("--workers", type=int, default=2,
                   help="decode worker processes in the parallel configuration")
    p.add_argument("--cache-bytes", type=int, default=64 << 20,
                   help="shared chunk-cache budget in the cached configurations")
    p.add_argument("--concurrency", type=int, default=4,
                   help="concurrent reader threads in the cached configurations")
    p.add_argument("--max-inflight", type=int, default=4,
                   help="look-ahead tile bound in the streaming scenario")
    p.add_argument("--seed", type=int, default=0, help="fixture + request stream seed")
    p.add_argument("--out", default=None,
                   help="report path (default: BENCH_read.json at the repo root)")
    p.add_argument("--eb-min", type=float, default=1e-3)
    p.add_argument("--eb-max", type=float, default=3e-1)
    p.add_argument("-n", type=int, default=6, help="training error-bound grid size")
    p.add_argument("--iters", type=int, default=4, help="training search iterations")
    p.add_argument("--check", action="store_true",
                   help="CI mode: tiny fixture, identity gate only, no report written")
    _add_trace_arg(p)
    p.set_defaults(func=cmd_read_bench)

    p = sub.add_parser(
        "load-bench",
        help="sweep offered load through the async gateway; "
             "fail if responses diverge from direct service.predict",
    )
    p.add_argument("--model", default=None, help="saved .npz framework; trains one if omitted")
    p.add_argument("--framework", choices=("carol", "fxrz"), default="carol")
    p.add_argument("--compressor", choices=available_compressors(), default="szx")
    p.add_argument("--dataset", choices=DATASET_NAMES, default="miranda",
                   help="training dataset when no --model is given")
    p.add_argument("--train-shape", type=int, nargs="+", default=[12, 16, 16],
                   help="training field shape when training")
    p.add_argument("--shape", type=int, nargs="+", default=[12, 16, 16],
                   help="request field shape")
    p.add_argument("--fields", type=int, default=4, help="distinct fields in the stream")
    p.add_argument("--requests", type=int, default=120, help="requests per run")
    p.add_argument("--reps", type=int, default=2, help="repetitions per sweep cell")
    p.add_argument("--max-batch", type=int, default=16, help="gateway coalescing batch cap")
    p.add_argument("--max-wait-ms", type=float, default=2.0,
                   help="gateway coalescing linger window")
    p.add_argument("--max-pending", type=int, default=64,
                   help="admission cap (queued + in-flight requests)")
    p.add_argument("--cache", type=int, default=256, help="feature-cache entries")
    p.add_argument("--eb-min", type=float, default=1e-3)
    p.add_argument("--eb-max", type=float, default=1e-1)
    p.add_argument("-n", type=int, default=5, help="training error-bound grid size")
    p.add_argument("--iters", type=int, default=4, help="training search iterations")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", default=None,
                   help="report path (default: BENCH_serve.json at the repo root)")
    p.add_argument("--check", action="store_true",
                   help="CI mode: tiny sweep, identity gate only, no report written")
    _add_trace_arg(p)
    p.set_defaults(func=cmd_load_bench)

    p = sub.add_parser(
        "control-bench",
        help="paired ON/OFF control-plane benchmark; fail on byte divergence "
             "or when the OOD rescue misses its drift gate",
    )
    p.add_argument("--model", default=None, help="saved .npz framework; trains one if omitted")
    p.add_argument("--framework", choices=("carol", "fxrz"), default="carol")
    p.add_argument("--compressor", choices=available_compressors(), default="sz3")
    p.add_argument("--shape", type=int, nargs="+", default=[48, 32, 32],
                   help="bench field shape")
    p.add_argument("--chunk", type=int, nargs="+", default=[8, 16, 16],
                   help="chunk shape")
    p.add_argument("--ratio", type=float, default=5.0, help="whole-store target ratio")
    p.add_argument("--wave-size", type=int, default=4, help="chunks per wave (pinned)")
    p.add_argument("--workers", type=int, nargs="+", default=[0, 2],
                   help="worker counts the determinism gate packs with")
    p.add_argument("--ood-scale", type=float, default=1e3,
                   help="amplitude scale of the out-of-distribution field")
    p.add_argument("--t2-std", type=float, default=0.5,
                   help="model spread (log-eb std) at which a chunk escalates")
    p.add_argument("--t2-pressure", type=float, default=0.2,
                   help="observed pressure (budget drift or recent per-chunk "
                        "error) at which chunks escalate")
    p.add_argument("--refine-compressions", type=int, default=6,
                   help="real-compression cap per escalated chunk")
    p.add_argument("--reps", type=int, default=3,
                   help="timing repetitions for the fitted wall comparison (best-of)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--eb-min", type=float, default=1e-3)
    p.add_argument("--eb-max", type=float, default=3e-1)
    p.add_argument("-n", type=int, default=6, help="training error-bound grid size")
    p.add_argument("--iters", type=int, default=4, help="training search iterations")
    p.add_argument("--out", default=None,
                   help="report path (default: BENCH_control.json at the repo root)")
    p.add_argument("--check", action="store_true",
                   help="CI mode: tiny fixture, gates only, no report written")
    _add_trace_arg(p)
    p.set_defaults(func=cmd_control_bench)

    p = sub.add_parser("store-info", help="print a store's manifest summary")
    p.add_argument("store", help=".rps path")
    p.add_argument("--chunks", action="store_true", help="also list every chunk")
    p.set_defaults(func=cmd_store_info)

    p = sub.add_parser(
        "store-unpack",
        help="decompress a .rps store (verifying checksums) back to a raw field",
    )
    p.add_argument("store", help=".rps path")
    p.add_argument("--out", default=None, help="write the raw binary field here")
    p.add_argument("--verify-against", default=None, metavar="RAW",
                   help="raw original; exit non-zero unless every element is "
                        "within its chunk's recorded error bound")
    _add_trace_arg(p)
    p.set_defaults(func=cmd_store_unpack)

    p = sub.add_parser("trace-summary",
                       help="print a per-stage table from a --trace JSON")
    p.add_argument("trace_file", help="path written by --trace")
    p.set_defaults(func=cmd_trace_summary)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    trace_path = getattr(args, "trace", None)
    if not trace_path:
        return args.func(args)
    recorder = obs.enable()
    try:
        return args.func(args)
    finally:
        obs.disable()
        out = obs.export_trace(trace_path, recorder)
        print(f"trace written to {out}")


if __name__ == "__main__":
    raise SystemExit(main())
