"""Command-line interface: ``python -m repro <command>``.

Commands mirror the library's workflow:

- ``datasets``  — list the synthetic datasets and their fields;
- ``estimate``  — print a ratio-vs-error-bound curve (full compressor,
  SECRE surrogate, or calibrated surrogate);
- ``train``     — fit a framework (CAROL or FXRZ) and save it;
- ``predict``   — predict the error bound for a target ratio with a saved
  model;
- ``compress``  — end-to-end: predict, compress, report achieved ratio;
- ``bench``     — run one named paper experiment and print its table;
- ``trace-summary`` — aggregate a ``--trace`` JSON into a per-stage table.

``train``, ``compress``, and ``bench`` accept ``--trace out.json``:
observability (:mod:`repro.obs`) is enabled for the run and the span
tree plus metrics are written to the given path on exit.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro import obs
from repro.compressors.registry import available_compressors
from repro.core.carol import CarolFramework
from repro.core.collection import TrainingCollector
from repro.core.fxrz import FxrzFramework
from repro.data.datasets import DATASET_NAMES, load_dataset, load_field
from repro.utils.serialization import load_framework, save_framework


def _add_trace_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument("--trace", default=None, metavar="OUT.json",
                   help="record an observability trace and write it here")


def _add_common_field_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("field", help="field path, e.g. miranda/viscosity")
    p.add_argument("--shape", type=int, nargs="+", default=None,
                   help="override the field's grid shape")
    p.add_argument("--seed", type=int, default=None, help="dataset seed")


def _load_field(args):
    kwargs = {}
    if args.shape:
        kwargs["shape"] = tuple(args.shape)
    if args.seed is not None:
        kwargs["seed"] = args.seed
    return load_field(args.field, **kwargs)


def cmd_datasets(_args) -> int:
    for name in DATASET_NAMES:
        fields = load_dataset(name, shape=(4, 8, 8) if name != "cesm" else (8, 16))
        names = ", ".join(f.name for f in fields)
        print(f"{name:<10} {len(fields):>2} fields: {names}")
    return 0


def cmd_estimate(args) -> int:
    field = _load_field(args)
    ebs = np.geomspace(args.eb_min, args.eb_max, args.n) * field.value_range
    mode = args.mode
    collector = TrainingCollector(
        args.compressor, mode=mode, rel_error_bounds=np.geomspace(args.eb_min, args.eb_max, args.n),
        calibration_points=args.calibration_points,
    )
    rec = collector.collect_field(field)
    print(f"# {field.path} shape={field.data.shape} compressor={args.compressor} mode={mode}")
    print(f"# collected in {rec.collect_seconds:.3f}s")
    print(f"{'error_bound':>14} {'ratio':>10}")
    for eb, ratio in zip(rec.error_bounds, rec.ratios):
        print(f"{eb:>14.6g} {ratio:>10.3f}")
    return 0


def cmd_train(args) -> int:
    if args.config:
        from repro.core.config import FrameworkConfig

        cfg = FrameworkConfig.load(args.config)
        fw = cfg.build()
        fields = cfg.load_training_fields()
    else:
        fields = []
        for ds in args.datasets:
            kwargs = {"shape": tuple(args.shape)} if args.shape else {}
            fields.extend(load_dataset(ds, **kwargs))
        cls = CarolFramework if args.framework == "carol" else FxrzFramework
        fw = cls(
            compressor=args.compressor,
            rel_error_bounds=np.geomspace(args.eb_min, args.eb_max, args.n),
            n_iter=args.iters,
            cv=args.cv,
        )
    report = fw.fit(fields)
    print(
        f"{fw.name} fitted on {len(fields)} fields: "
        f"collection {report.collection_seconds:.2f}s, "
        f"training {report.training_seconds:.2f}s, {report.n_rows} rows"
    )
    path = save_framework(args.out, fw)
    print(f"saved to {path}")
    return 0


def cmd_predict(args) -> int:
    fw = load_framework(args.model)
    field = _load_field(args)
    pred = fw.predict_error_bound(field.data, args.ratio)
    print(f"predicted error bound: {pred.error_bound:.6g}")
    print(f"(features {np.round(pred.features, 5).tolist()}, "
          f"extraction {pred.feature_seconds*1000:.2f} ms, "
          f"inference {pred.inference_seconds*1000:.2f} ms)")
    return 0


def cmd_compress(args) -> int:
    fw = load_framework(args.model)
    field = _load_field(args)
    result, pred = fw.compress_to_ratio(field.data, args.ratio)
    err = 100.0 * abs(result.ratio - args.ratio) / args.ratio
    print(f"requested ratio : {args.ratio:.2f}")
    print(f"predicted eb    : {pred.error_bound:.6g}")
    print(f"achieved ratio  : {result.ratio:.2f} ({err:.1f}% off)")
    print(f"compressed size : {result.compressed_bytes} bytes "
          f"(from {result.original_bytes})")
    if args.out:
        with open(args.out, "wb") as fh:
            fh.write(result.payload)
        print(f"payload written to {args.out}")
    return 0


def cmd_trace_summary(args) -> int:
    try:
        payload = obs.load_trace(args.trace_file)
    except (OSError, ValueError, KeyError) as exc:
        print(f"cannot read trace {args.trace_file!r}: {exc}", file=sys.stderr)
        return 2
    print(obs.format_summary(payload["spans"], payload.get("metrics")))
    return 0


def cmd_bench(args) -> int:
    from repro.bench import experiments, experiments_model
    from repro.bench.harness import get_scale

    registry = {}
    for mod in (experiments, experiments_model):
        for name in dir(mod):
            if name.startswith(("fig", "tab", "ablation")):
                registry[name] = getattr(mod, name)
    if args.experiment not in registry:
        print(f"unknown experiment {args.experiment!r}; available:", file=sys.stderr)
        for name in sorted(registry):
            print(f"  {name}", file=sys.stderr)
        return 2
    print(registry[args.experiment](get_scale()))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="CAROL ratio-controlled compression (ICPP'24 reproduction)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list synthetic datasets").set_defaults(func=cmd_datasets)

    p = sub.add_parser("estimate", help="print a ratio-vs-error-bound curve")
    _add_common_field_args(p)
    p.add_argument("--compressor", choices=available_compressors(), default="sz3")
    p.add_argument("--mode", choices=("full", "secre", "calibrated"), default="calibrated")
    p.add_argument("--eb-min", type=float, default=1e-3)
    p.add_argument("--eb-max", type=float, default=1e-1)
    p.add_argument("-n", type=int, default=10, help="grid size")
    p.add_argument("--calibration-points", type=int, default=4)
    p.set_defaults(func=cmd_estimate)

    p = sub.add_parser("train", help="fit a framework and save it")
    p.add_argument("--config", default=None,
                   help="JSON FrameworkConfig; overrides the flags below")
    p.add_argument("--framework", choices=("carol", "fxrz"), default="carol")
    p.add_argument("--compressor", choices=available_compressors(), default="sz3")
    p.add_argument("--datasets", nargs="+", default=["miranda"])
    p.add_argument("--shape", type=int, nargs="+", default=None)
    p.add_argument("--eb-min", type=float, default=1e-3)
    p.add_argument("--eb-max", type=float, default=1e-1)
    p.add_argument("-n", type=int, default=10)
    p.add_argument("--iters", type=int, default=6)
    p.add_argument("--cv", type=int, default=3)
    p.add_argument("--out", required=True, help="output .npz model path")
    _add_trace_arg(p)
    p.set_defaults(func=cmd_train)

    p = sub.add_parser("predict", help="predict an error bound for a target ratio")
    p.add_argument("--model", required=True)
    p.add_argument("--ratio", type=float, required=True)
    _add_common_field_args(p)
    p.set_defaults(func=cmd_predict)

    p = sub.add_parser("compress", help="compress a field to a target ratio")
    p.add_argument("--model", required=True)
    p.add_argument("--ratio", type=float, required=True)
    p.add_argument("--out", default=None, help="write the payload here")
    _add_common_field_args(p)
    _add_trace_arg(p)
    p.set_defaults(func=cmd_compress)

    p = sub.add_parser("bench", help="run one paper experiment")
    p.add_argument("experiment", help="e.g. fig2_surrogate_curves, tab5_calibration")
    _add_trace_arg(p)
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser("trace-summary",
                       help="print a per-stage table from a --trace JSON")
    p.add_argument("trace_file", help="path written by --trace")
    p.set_defaults(func=cmd_trace_summary)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    trace_path = getattr(args, "trace", None)
    if not trace_path:
        return args.func(args)
    recorder = obs.enable()
    try:
        return args.func(args)
    finally:
        obs.disable()
        out = obs.export_trace(trace_path, recorder)
        print(f"trace written to {out}")


if __name__ == "__main__":
    raise SystemExit(main())
