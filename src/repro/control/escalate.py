"""The two non-model tiers: surrogate heuristic (T0) and FRaZ refinement (T2).

Both endpoints of the escalation ladder already exist in the codebase —
:mod:`repro.surrogate` estimates ratio curves without compressing, and
:class:`repro.core.fraz.FrazSearch` searches the real compressor — this
module just adapts them to the control plane's shape: one error bound
out, deterministic, bounded cost.
"""

from __future__ import annotations

import numpy as np

from repro.core.fraz import FrazResult, FrazSearch
from repro.core.prediction import invert_curve
from repro.surrogate.base import SurrogateEstimator
from repro.surrogate.registry import get_surrogate
from repro.utils.validation import as_float_array

#: Relative error-bound range the heuristic curve samples — the same span
#: :class:`FrazSearch` brackets, so a heuristic guess always lands inside
#: the range a T2 escalation would search.
HEURISTIC_REL_EB_RANGE = (1e-6, 0.5)


def heuristic_error_bound(
    data: np.ndarray,
    target_ratio: float,
    *,
    compressor: str,
    points: int = 5,
    surrogate: SurrogateEstimator | None = None,
) -> float:
    """T0: invert a small surrogate-estimated curve — no features, no model.

    Samples ``points`` error bounds log-spaced over the value range,
    estimates their ratios with the compressor's surrogate (never running
    the real codec), and inverts the curve at ``target_ratio``. Cheap and
    deterministic; accuracy is whatever the surrogate's is, which is why
    the policy only relaxes here when the model has been agreeing with
    observed outcomes (low spread, low drift).
    """
    if target_ratio <= 0:
        raise ValueError("target_ratio must be positive")
    if points < 2:
        raise ValueError("points must be >= 2")
    arr = as_float_array(data)
    if surrogate is None:
        surrogate = get_surrogate(compressor)
    vrange = float(arr.max() - arr.min()) or 1.0
    lo, hi = HEURISTIC_REL_EB_RANGE
    ebs = np.exp(np.linspace(np.log(lo), np.log(hi), int(points))) * vrange
    ratios, _ = surrogate.estimate_curve(arr, ebs)
    return invert_curve(ebs, ratios, float(target_ratio))


def refine_error_bound(
    data: np.ndarray,
    target_ratio: float,
    *,
    compressor: str,
    initial_eb: float,
    max_compressions: int = 4,
    tolerance: float = 0.05,
) -> FrazResult:
    """T2: warm-started FRaZ search against the real compressor.

    The prior tier's error bound seeds the search
    (:meth:`FrazSearch.compress_to_ratio` with ``initial_eb``), so a
    roughly-right guess converges in 1–3 compressions instead of the cold
    bracket's full budget. ``max_compressions`` is a hard cap; the result
    reports ``converged`` and its full ``(eb, ratio)`` history — each
    entry a free ground-truth observation for the feedback loop.
    """
    search = FrazSearch(
        compressor, tolerance=tolerance, max_iterations=max_compressions
    )
    return search.compress_to_ratio(data, target_ratio, initial_eb=float(initial_eb))
