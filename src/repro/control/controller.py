"""The Controller: stateful tier accounting over one pack (or a service).

:class:`Controller` owns the mutable side of the control plane — the
risk budget, the committed-spread window, and the tier counters — while
every *decision* goes through the pure :func:`repro.control.policy.decide_tier`
table. It is deliberately ignorant of stores and services: callers feed
it observations (``record_std``), ask for decisions (``wave_tier`` /
``chunk_tier``), and invoke the non-model tiers (``heuristic_prediction``
/ ``refine``). The store writer drives it at wave boundaries from
committed state only, which is what keeps controller-on packs
byte-identical across worker counts.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.core.framework import Prediction
from repro.core.fraz import FrazResult, FrazSearch
from repro.control.escalate import heuristic_error_bound
from repro.control.policy import ControlOptions, ControlStats, Tier, decide_tier
from repro.surrogate.registry import get_surrogate


@dataclass
class ControlledPrediction:
    """One governed request's outcome: the final answer plus how it was made.

    ``prediction`` carries the error bound actually used (the refined one
    when the request escalated); ``model`` is the raw model prediction
    that seeded it (``None`` for a heuristic answer); ``fraz`` is the T2
    search record when one ran.
    """

    prediction: Prediction
    tier: Tier
    model: Prediction | None = None
    fraz: FrazResult | None = None

    @property
    def error_bound(self) -> float:
        return self.prediction.error_bound

    @property
    def compressions(self) -> int:
        """Real compressor runs this request cost *before* the final
        compression (0 unless it escalated to T2)."""
        return self.fraz.n_compressions if self.fraz is not None else 0


class Controller:
    """Risk- and budget-aware tier escalation over one predictor.

    ``predictor`` is a fitted
    :class:`~repro.core.framework.RatioControlledFramework` or a
    :class:`repro.serve.PredictionService` wrapping one (duck-typed
    exactly like :class:`repro.store.writer.StoreWriter`; the service
    route re-resolves its framework per call, inheriting registry
    hot-reload). ``feedback``, if given, receives **every** T2
    compression measurement as a ground-truth observation.
    """

    def __init__(
        self,
        predictor,
        *,
        options: ControlOptions | None = None,
        feedback=None,
    ) -> None:
        self.options = options or ControlOptions()
        self.feedback = feedback
        if hasattr(predictor, "predict_error_bound"):
            self._framework = predictor
            self._service = None
        elif hasattr(predictor, "predict") and hasattr(predictor, "framework"):
            self._framework = None
            self._service = predictor
        else:
            raise TypeError(
                "predictor must be a fitted framework or a PredictionService, "
                f"got {type(predictor).__name__}"
            )
        self._surrogate = None
        self._search: FrazSearch | None = None
        self._search_codec: str | None = None
        self._stds: deque[float] = deque(maxlen=self.options.std_window)
        self._errors: deque[float] = deque(maxlen=self.options.std_window)
        self.reset()

    @property
    def framework(self):
        """The framework decisions are made for (re-resolved when
        service-backed, so registry hot-reloads are honoured)."""
        if self._service is not None:
            return self._service.framework
        return self._framework

    def reset(self) -> None:
        """Start a fresh accounting scope (one pack): full risk budget,
        zeroed counters. The committed-spread window survives — past
        agreement between model and compressor is still evidence."""
        self._risk_remaining = int(self.options.risk_budget)
        self._t0 = self._t1 = self._t2 = 0
        self._esc_std = self._esc_pressure = 0
        self._compressions = 0

    @property
    def risk_remaining(self) -> int:
        """T2 escalations the current scope may still spend."""
        return self._risk_remaining

    # -- observations ------------------------------------------------------------

    def record_std(self, std: float) -> None:
        """Feed one committed chunk's model spread into the relax window
        (``nan`` spreads — model kinds without one — are not evidence)."""
        if not math.isnan(std):
            self._stds.append(float(std))

    def record_outcome(self, target_ratio: float, achieved_ratio: float) -> None:
        """Feed one committed chunk's measured cheap-tier accuracy into
        the trust window (relative ratio error vs its wave target).

        For a T0/T1 chunk ``achieved_ratio`` is simply the stored chunk's
        real ratio. For an escalated chunk, pass the warm search's *first
        probe* ratio — the one measured at the model's own error bound —
        not the refined result: the window tracks how wrong the cheap
        tier *would have been*, so trust keeps updating (and can recover)
        even while every chunk refines. Without that, a tripped window
        would never see another cheap-tier outcome and escalation would
        latch on for the rest of the pack.
        """
        if target_ratio <= 0:
            return
        self._errors.append(
            abs(float(achieved_ratio) - float(target_ratio)) / float(target_ratio)
        )

    def observed_pressure(self, budget_drift: float) -> float:
        """The pressure signal for the next decision: the worse of the
        aggregate budget drift and the cheap tiers' *typical* recent
        per-chunk ratio error (window median).

        Aggregate drift alone is gameable by cancellation — an
        undershooting first wave and an overshooting later one can sum
        to a budget that *looks* on target while every individual chunk
        misses badly. The per-chunk error window cannot cancel (errors
        are absolute values), so systematic model misprediction keeps
        the pressure high until refined chunks stop feeding it. The
        median (not the mean) is what makes it a *systematic* signal: a
        usable model with a minority of hard chunks stays trusted, while
        an out-of-distribution model — wrong on every chunk — trips it.
        """
        pressure = max(0.0, float(budget_drift))
        if len(self._errors) >= 2:
            pressure = max(pressure, float(np.median(self._errors)))
        return pressure

    # -- decisions ---------------------------------------------------------------

    def wave_tier(self, pressure: float) -> Tier:
        """May the next wave skip the model entirely (T0)?

        Relaxing needs *accumulated* evidence: the committed-spread
        window must be full (``std_window`` observed chunks) and its mean
        must clear the same :func:`decide_tier` table a single chunk
        would. Anything short of that answers :attr:`Tier.MODEL` — the
        wave then runs features + model and escalates per chunk.
        """
        opts = self.options
        if opts.t0_std <= 0.0 or len(self._stds) < self._stds.maxlen:
            return Tier.MODEL
        mean_std = float(np.mean(self._stds))
        tier = decide_tier(
            std=mean_std, pressure=float(pressure),
            risk_remaining=self._risk_remaining, options=opts,
        )
        return Tier.HEURISTIC if tier is Tier.HEURISTIC else Tier.MODEL

    def chunk_tier(self, std: float, pressure: float) -> Tier:
        """Decide one already-predicted chunk: stay at T1 or escalate.

        Consumes the risk budget on escalation, so callers **must**
        invoke this in flat chunk-id order — that is what makes the
        budget bind deterministically. Never answers T0 (the model pass
        is already paid for; relaxing is a wave-boundary decision).
        """
        tier = decide_tier(
            std=float(std), pressure=float(pressure),
            risk_remaining=self._risk_remaining, options=self.options,
        )
        if tier is Tier.REFINE:
            self._risk_remaining -= 1
            self._t2 += 1
            if not math.isnan(std) and std >= self.options.t2_std:
                self._esc_std += 1
            else:
                self._esc_pressure += 1
            return Tier.REFINE
        self._t1 += 1
        return Tier.MODEL

    # -- tier execution ----------------------------------------------------------

    def heuristic_prediction(self, data: np.ndarray, target_ratio: float) -> Prediction:
        """T0: a surrogate-curve error bound shaped as a :class:`Prediction`.

        The features array is *empty* — nothing was extracted — which is
        the marker downstream consumers key on (the store skips feedback
        for such chunks; ``std`` stays ``nan``).
        """
        if self._surrogate is None:
            self._surrogate = get_surrogate(self.framework.compressor_name)
        eb = heuristic_error_bound(
            data,
            target_ratio,
            compressor=self.framework.compressor_name,
            points=self.options.heuristic_points,
            surrogate=self._surrogate,
        )
        self._t0 += 1
        return Prediction(
            error_bound=float(eb),
            target_ratio=float(target_ratio),
            features=np.empty(0),
            feature_seconds=0.0,
            inference_seconds=0.0,
        )

    def refine(
        self,
        data: np.ndarray,
        target_ratio: float,
        *,
        initial_eb: float,
        features: np.ndarray | None = None,
    ) -> FrazResult:
        """T2: warm-started search against the real compressor.

        Runs strictly in-process (never on a worker pool), so escalated
        chunks cost the same bytes for every worker count. Every probe's
        ``(eb, ratio)`` measurement is logged into the feedback loop when
        one is attached and ``features`` are known — the caller should
        then *not* log the chunk again.
        """
        codec = self.framework.compressor_name
        if self._search is None or self._search_codec != codec:
            self._search = FrazSearch(
                codec,
                tolerance=self.options.refine_tolerance,
                max_iterations=self.options.refine_compressions,
            )
            self._search_codec = codec
        fraz = self._search.compress_to_ratio(
            data, target_ratio, initial_eb=initial_eb
        )
        self._compressions += fraz.n_compressions
        if self.feedback is not None and features is not None:
            feats = np.asarray(features, dtype=np.float64)
            if feats.size:
                for eb, ratio in fraz.history:
                    self.feedback.record(feats, eb, ratio, target_ratio)
        return fraz

    # -- serving -----------------------------------------------------------------

    def govern(
        self, data, target_ratio: float, *, safety: float = 0.0
    ) -> ControlledPrediction:
        """One governed request: predict, then escalate if warranted.

        The serve path is **stateless across requests** by design: the
        decision sees no drift history (``pressure=0``) and a
        single-request risk allowance (1 when escalation is enabled at
        all), never the shared pack budget — so batched, sequential, and
        gateway-coalesced traffic produce bitwise-identical answers
        regardless of request order. Tier counters still accumulate for
        :meth:`stats`, but they never feed back into decisions.
        """
        if self._service is not None:
            pred = self._service.predict(data, target_ratio, safety=safety)
        else:
            pred = self._framework.predict_error_bound(
                data, target_ratio, safety=safety
            )
        risk = 1 if self.options.risk_budget > 0 else 0
        tier = decide_tier(
            std=pred.std, pressure=0.0, risk_remaining=risk, options=self.options
        )
        if tier is not Tier.REFINE:
            self._t1 += 1
            return ControlledPrediction(prediction=pred, tier=Tier.MODEL, model=pred)
        self._t2 += 1
        self._esc_std += 1
        fraz = self.refine(
            data, target_ratio, initial_eb=pred.error_bound, features=pred.features
        )
        refined = Prediction(
            error_bound=float(fraz.error_bound),
            target_ratio=float(target_ratio),
            features=pred.features,
            feature_seconds=pred.feature_seconds,
            inference_seconds=pred.inference_seconds,
            std=pred.std,
        )
        return ControlledPrediction(
            prediction=refined, tier=Tier.REFINE, model=pred, fraz=fraz
        )

    # -- introspection -----------------------------------------------------------

    def stats(self, *, budget_drift: float = float("nan")) -> ControlStats:
        """A :class:`ControlStats` snapshot of the current scope."""
        return ControlStats(
            t0=self._t0,
            t1=self._t1,
            t2=self._t2,
            escalations_std=self._esc_std,
            escalations_pressure=self._esc_pressure,
            compressions_spent=self._compressions,
            budget_drift=float(budget_drift),
        )
