"""Risk- and budget-aware control plane: heuristic → model → FRaZ.

One fitted model answers most requests (T1), but two failure modes call
for different tiers: a model that has *earned trust* on this data can be
relaxed to a surrogate-curve heuristic (T0, no features, no forest), and
a chunk the model is *visibly unsure about* — or a pack drifting off its
byte budget — escalates to a warm-started FRaZ search against the real
compressor (T2). :mod:`repro.control.policy` is the pure decision table;
:class:`Controller` adds the stateful accounting (risk budget, spread
window, tier counters); :mod:`repro.control.escalate` implements the two
non-model tiers; :mod:`repro.control.bench` measures the whole plane
with a paired ON/OFF benchmark.
"""

from repro.control.controller import ControlledPrediction, Controller
from repro.control.escalate import heuristic_error_bound, refine_error_bound
from repro.control.policy import ControlOptions, ControlStats, Tier, decide_tier

__all__ = [
    "ControlOptions",
    "ControlStats",
    "ControlledPrediction",
    "Controller",
    "Tier",
    "decide_tier",
    "heuristic_error_bound",
    "refine_error_bound",
]
