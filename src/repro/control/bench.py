"""``control-bench``: the control plane's paired ON/OFF proof artifact.

Three phases, mirroring ``codec-bench`` / ``read-bench`` / ``load-bench``:

1. **Neutrality gate** — the same field is packed with plain
   :class:`~repro.store.StoreOptions` and with ``control=None`` spelled
   out: the two ``.rps`` files must be byte-identical (having a control
   plane *available* must not change a single byte of uncontrolled
   packs).
2. **Determinism gate** — the controller-ON pack runs at several worker
   counts with a pinned ``wave_size``; every output must be
   byte-identical (control decisions happen at wave boundaries from
   committed state, and T2 refinement runs in-process, so worker count
   can never leak into the bytes).
3. **Paired scenarios** — each scenario packs ON and OFF with the same
   predictor and budget:

   - *fitted*: an in-distribution field. The model is trusted, nothing
     escalates, and the ON wall time should sit within a few percent of
     OFF (reported as ``wall_ratio``, best-of-``reps``).
   - *ood*: the same field scaled by ``ood_scale`` — every feature the
     model was trained on shifts, the forest cannot extrapolate, and the
     OFF pack misses its byte budget badly. The ON pack detects the miss
     (spread and drift triggers), escalates within its risk budget, and
     must land within 10% whole-store drift while reporting how many
     real compressions the rescue cost.

The report is committed as ``BENCH_control.json`` at the repo root,
commit-stamped. ``--check`` (CI) keeps the neutrality, determinism, and
rescue gates on a tiny fixture, writes nothing.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.bench.codec_bench import repo_commit
from repro.control.policy import ControlOptions
from repro.store.writer import StoreOptions, pack

SCHEMA = "repro.control-bench/v1"
REPORT_NAME = "BENCH_control.json"

_REPO_ROOT = Path(__file__).resolve().parents[3]

#: The whole-store drift an OOD rescue must stay within (the headline gate).
RESCUE_DRIFT = 0.10


def _pack_summary(report, wall_s: float) -> dict:
    worst = 0.0
    for c in report.chunks:
        worst = max(worst, abs(c.achieved_ratio - c.target_ratio) / c.target_ratio)
    return {
        "wall_s": float(wall_s),
        "achieved_ratio": float(report.achieved_ratio),
        "budget_drift": float(report.budget_drift),
        "stored_bytes": int(report.stored_bytes),
        "file_bytes": int(report.file_bytes),
        "n_chunks": int(report.n_chunks),
        "worst_chunk_drift": float(worst),
        "control": report.control.as_dict() if report.control else None,
    }


def _timed_pack(path, source, framework, ratio, options, reps: int = 1):
    """Pack ``reps`` times into ``path`` (overwriting); best-of wall time."""
    best, report = float("inf"), None
    for _ in range(max(1, reps)):
        t0 = time.perf_counter()
        report = pack(path, source, framework, ratio, options=options)
        best = min(best, time.perf_counter() - t0)
    return report, best


def run_control_bench(
    framework,
    *,
    shape: tuple[int, ...] = (48, 32, 32),
    chunk: tuple[int, ...] = (8, 16, 16),
    ratio: float = 5.0,
    wave_size: int = 4,
    workers: tuple[int, ...] = (0, 2),
    ood_scale: float = 1e3,
    t2_std: float = 0.5,
    t2_pressure: float = 0.2,
    refine_compressions: int = 6,
    risk_budget: int | None = None,
    reps: int = 3,
    seed: int = 0,
    work_dir: str | Path | None = None,
) -> dict:
    """Run the full benchmark; returns the ``BENCH_control.json`` dict.

    ``report["ok"]`` is the combined gate verdict; the CLI exits nonzero
    when it is false. ``risk_budget=None`` sizes the budget to the chunk
    count, so an OOD pack may escalate every chunk.

    Fixture sizing matters for the rescue gate: the first wave carries no
    drift evidence yet (nothing committed), so its chunks land at the raw
    model prediction no matter how wrong. The field must be large enough —
    relative to ``wave_size`` — that a worst-case first wave leaves the
    remaining byte budget reachable within the compressor's ratio ceiling.
    ``t2_pressure`` separates "noisy but usable" from "broken": an
    in-distribution model misses by ~10–15% per chunk (escalating those
    would torch the fitted wall gate), an OOD one by ~100%.
    """
    import tempfile

    from repro.data import load_field

    field = load_field("miranda/pressure", shape=tuple(shape), seed=seed + 7)
    fitted_src = field.data
    ood_src = fitted_src * float(ood_scale)

    n_chunks = 1
    for dim, c in zip(shape, chunk):
        n_chunks *= -(-dim // c)
    if risk_budget is None:
        risk_budget = n_chunks
    control = ControlOptions(
        t2_std=float(t2_std),
        t2_pressure=float(t2_pressure),
        refine_compressions=int(refine_compressions),
        risk_budget=int(risk_budget),
    )

    def opts(control_opts, n_workers: int = 0) -> StoreOptions:
        return StoreOptions(
            chunk_shape=tuple(chunk),
            wave_size=int(wave_size),
            workers=int(n_workers),
            control=control_opts,
        )

    tmp = None
    if work_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="control-bench-")
        work_dir = tmp.name
    work = Path(work_dir)
    work.mkdir(parents=True, exist_ok=True)

    try:
        # 1. Neutrality: plain options vs explicit control=None, same bytes.
        plain_report, _ = _timed_pack(
            work / "plain.rps", fitted_src, framework, ratio,
            StoreOptions(chunk_shape=tuple(chunk), wave_size=int(wave_size)),
        )
        off_report, off_wall = _timed_pack(
            work / "fitted-off.rps", fitted_src, framework, ratio,
            opts(None), reps=reps,
        )
        neutral = (
            (work / "plain.rps").read_bytes()
            == (work / "fitted-off.rps").read_bytes()
        )

        # 2. Worker determinism of the controller-ON pack (OOD source: the
        # escalating path is the one worth proving, pinned wave_size).
        worker_bytes = {}
        for w in workers:
            p = work / f"ood-on-w{w}.rps"
            pack(p, ood_src, framework, ratio, options=opts(control, w))
            worker_bytes[int(w)] = p.read_bytes()
        reference = worker_bytes[int(workers[0])]
        deterministic = all(b == reference for b in worker_bytes.values())

        # 3a. Fitted scenario: ON must not slow a trusted model down.
        fitted_on_report, on_wall = _timed_pack(
            work / "fitted-on.rps", fitted_src, framework, ratio,
            opts(control), reps=reps,
        )
        wall_ratio = on_wall / off_wall if off_wall > 0 else float("inf")

        # 3b. OOD scenario: OFF drifts, ON must rescue within the budget.
        ood_off_report, ood_off_wall = _timed_pack(
            work / "ood-off.rps", ood_src, framework, ratio, opts(None)
        )
        ood_on_report, ood_on_wall = _timed_pack(
            work / "ood-on.rps", ood_src, framework, ratio, opts(control)
        )
    finally:
        if tmp is not None:
            tmp.cleanup()

    fitted = {
        "off": _pack_summary(off_report, off_wall),
        "on": _pack_summary(fitted_on_report, on_wall),
        "wall_ratio": float(wall_ratio),
    }
    ood = {
        "off": _pack_summary(ood_off_report, ood_off_wall),
        "on": _pack_summary(ood_on_report, ood_on_wall),
    }
    gates = {
        "neutral": bool(neutral),
        "deterministic": bool(deterministic),
        "ood_rescued": bool(
            ood_on_report.budget_drift <= RESCUE_DRIFT
            and ood_on_report.budget_drift < ood_off_report.budget_drift
        ),
    }
    return {
        "schema": SCHEMA,
        "commit": repo_commit(),
        "generated_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "compressor": framework.compressor_name,
        "shape": list(shape),
        "chunk": list(chunk),
        "n_chunks": int(n_chunks),
        "target_ratio": float(ratio),
        "wave_size": int(wave_size),
        "workers": [int(w) for w in workers],
        "ood_scale": float(ood_scale),
        "reps": int(reps),
        "seed": int(seed),
        "control": control.to_kwargs(),
        "rescue_drift_gate": RESCUE_DRIFT,
        "fitted": fitted,
        "ood": ood,
        "gates": gates,
        "ok": all(gates.values()),
    }


def format_report(report: dict) -> str:
    """Human-readable summary: gates, then the paired scenario table."""
    lines = [
        f"control-bench: {report['compressor']} shape={tuple(report['shape'])} "
        f"chunk={tuple(report['chunk'])} target={report['target_ratio']:g} "
        f"wave={report['wave_size']} commit={report['commit'] or '?'}",
        "neutrality: " + (
            "control=None pack byte-identical to plain StoreOptions pack"
            if report["gates"]["neutral"] else "DIVERGED"
        ),
        "determinism: " + (
            f"controller-ON bytes identical across workers {report['workers']}"
            if report["gates"]["deterministic"] else "DIVERGED across worker counts"
        ),
        f"{'scenario':<10} {'mode':<4} {'wall s':>8} {'ratio':>8} {'drift':>7} "
        f"{'worst':>7} {'t0':>4} {'t1':>4} {'t2':>4} {'compr':>6}",
    ]
    for scenario in ("fitted", "ood"):
        for mode in ("off", "on"):
            row = report[scenario][mode]
            ctrl = row["control"] or {}
            lines.append(
                f"{scenario:<10} {mode:<4} {row['wall_s']:>8.3f} "
                f"{row['achieved_ratio']:>8.2f} {row['budget_drift']:>7.1%} "
                f"{row['worst_chunk_drift']:>7.1%} "
                f"{ctrl.get('t0', '-'):>4} {ctrl.get('t1', '-'):>4} "
                f"{ctrl.get('t2', '-'):>4} {ctrl.get('compressions_spent', '-'):>6}"
            )
    lines.append(
        f"fitted ON/OFF wall ratio: {report['fitted']['wall_ratio']:.3f}x"
    )
    on, off = report["ood"]["on"], report["ood"]["off"]
    verdict = "RESCUED" if report["gates"]["ood_rescued"] else "NOT RESCUED"
    spent = (on["control"] or {}).get("compressions_spent", 0)
    lines.append(
        f"ood rescue: drift {off['budget_drift']:.1%} (off) -> "
        f"{on['budget_drift']:.1%} (on, gate {report['rescue_drift_gate']:.0%}) "
        f"at {spent} refine compressions — {verdict}"
    )
    return "\n".join(lines)


def write_report(report: dict, path: str | Path | None = None) -> Path:
    """Write the report JSON (default: ``BENCH_control.json`` at repo root)."""
    out = Path(path) if path is not None else _REPO_ROOT / REPORT_NAME
    out.write_text(json.dumps(report, indent=2, sort_keys=False) + "\n")
    return out


def load_report(path: str | Path | None = None) -> dict | None:
    """Read a previously committed report; None when absent or unreadable."""
    p = Path(path) if path is not None else _REPO_ROOT / REPORT_NAME
    try:
        report = json.loads(p.read_text())
    except (OSError, ValueError):
        return None
    return report if report.get("schema") == SCHEMA else None
