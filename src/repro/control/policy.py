"""Escalation policy: which tier answers a ratio-control request.

The control plane chooses, per chunk or request, between three tiers of
increasing cost and increasing trustworthiness:

====  ==========  ===============================================  ========
tier  name        how the error bound is produced                  cost
====  ==========  ===============================================  ========
T0    HEURISTIC   surrogate-curve inversion, no features/model     cheapest
T1    MODEL       the fitted model's prediction (the default)      1 feature
                                                                   pass + 1
                                                                   forest pass
T2    REFINE      FRaZ-style iterative search against the real     1–N real
                  compressor, warm-started from the prior tier     compressions
====  ==========  ===============================================  ========

:func:`decide_tier` is the *entire* decision — a pure, deterministic
function of three observables:

- ``std``: the model's across-tree spread for this request (log-eb
  space), ``nan`` when unknown (no model pass yet, or a model kind with
  no spread);
- ``pressure``: the observed relative drift of achieved ratio from the
  target — the store writer's closed loop measures it over committed
  chunks; a standalone request has no drift history (0.0);
- ``risk_remaining``: how many T2 escalations the caller may still
  spend (the per-pack risk budget).

Determinism matters because the store packs in parallel waves: every
decision input is *committed* state (wave-boundary budget accounting,
bitwise-reproducible model spreads), never timing or completion order,
so controller-on packs are byte-identical for every worker count.

The decision is monotone by construction: growing ``std`` or
``pressure`` can only raise the tier, and a larger ``risk_remaining``
can only enable (never suppress) escalation — the property the
escalation-table tests assert over input grids.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, fields as dc_fields


class Tier(enum.IntEnum):
    """Escalation tiers, ordered so ``max(tier_a, tier_b)`` escalates."""

    HEURISTIC = 0  # T0: surrogate-curve inversion
    MODEL = 1      # T1: fitted-model prediction
    REFINE = 2     # T2: iterative search against the real compressor


@dataclass(frozen=True, kw_only=True)
class ControlOptions:
    """Frozen, hashable control-plane configuration.

    Thresholds split the (std, pressure) plane into the three tiers:

    - ``t0_std`` / ``t0_pressure``: the *relax* corner. A request may
      drop to the heuristic tier only when the model's spread is known
      and at most ``t0_std`` AND observed drift is at most
      ``t0_pressure``. ``t0_std = 0.0`` (the default) disables the
      heuristic tier entirely — relaxing below the model is opt-in.
    - ``t2_std`` / ``t2_pressure``: the *escalate* edge. A spread at or
      above ``t2_std``, or drift at or above ``t2_pressure``, escalates
      to iterative refinement — if the risk budget still allows it.

    ``risk_budget`` caps T2 escalations per pack (the store consumes it
    chunk-by-chunk in flat chunk-id order, so the cap binds
    deterministically). ``refine_compressions`` bounds the real
    compressions any single T2 search may spend, and
    ``refine_tolerance`` is its per-request convergence band.
    ``heuristic_points`` sizes the surrogate curve the T0 tier inverts,
    and ``std_window`` is how many committed chunk spreads the store's
    wave-boundary relax decision averages over.
    """

    t0_std: float = 0.0
    t0_pressure: float = 0.02
    t2_std: float = 0.25
    t2_pressure: float = 0.10
    risk_budget: int = 16
    refine_compressions: int = 4
    refine_tolerance: float = 0.05
    heuristic_points: int = 5
    std_window: int = 32

    def __post_init__(self) -> None:
        if self.t0_std < 0:
            raise ValueError("t0_std must be >= 0")
        if self.t0_pressure < 0:
            raise ValueError("t0_pressure must be >= 0")
        if self.t2_std <= self.t0_std:
            raise ValueError("need t0_std < t2_std (tiers must be ordered)")
        if self.t2_pressure <= self.t0_pressure:
            raise ValueError("need t0_pressure < t2_pressure (tiers must be ordered)")
        if self.risk_budget < 0:
            raise ValueError("risk_budget must be >= 0")
        if self.refine_compressions < 1:
            raise ValueError("refine_compressions must be >= 1")
        if self.refine_tolerance <= 0:
            raise ValueError("refine_tolerance must be > 0")
        if self.heuristic_points < 2:
            raise ValueError("heuristic_points must be >= 2")
        if self.std_window < 1:
            raise ValueError("std_window must be >= 1")

    @classmethod
    def from_controller(cls, controller) -> "ControlOptions":
        """Recover the options a live :class:`~repro.control.Controller`
        was built with."""
        return controller.options

    def to_kwargs(self) -> dict:
        """The constructor kwargs that rebuild these options
        (``ControlOptions(**opts.to_kwargs())`` round-trips)."""
        return {f.name: getattr(self, f.name) for f in dc_fields(self)}

    def build(self, predictor, *, feedback=None):
        """Construct a :class:`~repro.control.Controller` over a fitted
        framework or a :class:`repro.serve.PredictionService`."""
        from repro.control.controller import Controller

        return Controller(predictor, options=self, feedback=feedback)


def decide_tier(
    *, std: float, pressure: float, risk_remaining: int, options: ControlOptions
) -> Tier:
    """The escalation decision table — pure and deterministic.

    ``std`` may be ``nan`` (unknown): an unknown spread never qualifies
    for the heuristic tier (relaxing needs positive evidence of
    confidence) and never by itself triggers refinement (drift still
    can). Escalation to :attr:`Tier.REFINE` requires ``risk_remaining``
    > 0; with the budget exhausted the decision caps at
    :attr:`Tier.MODEL`.
    """
    std_known = not math.isnan(std)
    if (std_known and std >= options.t2_std) or pressure >= options.t2_pressure:
        if risk_remaining > 0:
            return Tier.REFINE
        return Tier.MODEL
    if (
        options.t0_std > 0.0
        and std_known
        and std <= options.t0_std
        and pressure <= options.t0_pressure
    ):
        return Tier.HEURISTIC
    return Tier.MODEL


@dataclass(frozen=True)
class ControlStats:
    """Typed, immutable control-plane counters (PR 7 stats convention).

    ``t0``/``t1``/``t2`` count requests answered per tier;
    ``escalations_std`` / ``escalations_pressure`` split the T2 count by
    what triggered it (a low-confidence model vs. observed budget
    drift); ``compressions_spent`` is the total real compressor runs the
    T2 searches consumed (each chunk would have cost one compression
    anyway, so the *overhead* is ``compressions_spent - t2``);
    ``budget_drift`` is the final whole-pack relative ratio drift
    (``nan`` outside a pack context).
    """

    t0: int
    t1: int
    t2: int
    escalations_std: int
    escalations_pressure: int
    compressions_spent: int
    budget_drift: float

    @property
    def requests(self) -> int:
        return self.t0 + self.t1 + self.t2

    @property
    def escalations(self) -> int:
        return self.escalations_std + self.escalations_pressure

    def as_dict(self) -> dict:
        return {
            "t0": self.t0,
            "t1": self.t1,
            "t2": self.t2,
            "escalations_std": self.escalations_std,
            "escalations_pressure": self.escalations_pressure,
            "compressions_spent": self.compressions_spent,
            "budget_drift": self.budget_drift,
        }
