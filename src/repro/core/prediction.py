"""Error-bound prediction from a trained model, plus the model-free baseline.

:class:`ErrorBoundModel` wraps the random forest: inputs are the five FXRZ
features plus log(target ratio), output is log(error bound) — the inference
path of both frameworks (Fig. 1).

:func:`invert_curve` is the model-free alternative (used by the ablation
bench): given a sampled compression function f(e), invert it by monotone
interpolation. It needs a measured/estimated curve for the *specific* input,
whereas the learned model generalizes across datasets from features alone.
"""

from __future__ import annotations

import numpy as np

from repro.core.collection import TrainingData
from repro.core.training import TrainingInfo, train_model
from repro.ml.space import SearchSpace


def invert_curve(error_bounds, ratios, target_ratio: float) -> float:
    """Error bound achieving ``target_ratio`` per a sampled curve f(e).

    The curve is first made monotone (running maximum — compressors are
    monotone up to measurement noise), then inverted by log-log linear
    interpolation; targets outside the sampled range clamp to the ends.
    """
    ebs = np.asarray(error_bounds, dtype=np.float64).ravel()
    f = np.asarray(ratios, dtype=np.float64).ravel()
    if ebs.size != f.size or ebs.size < 2:
        raise ValueError("need aligned curves with at least 2 points")
    if target_ratio <= 0:
        raise ValueError("target_ratio must be positive")
    order = np.argsort(ebs)
    ebs, f = ebs[order], np.maximum.accumulate(np.maximum(f[order], 1e-9))
    logf = np.log(f)
    logt = np.log(target_ratio)
    # np.interp needs strictly increasing x; collapse flat steps.
    keep = np.concatenate(([True], np.diff(logf) > 0))
    return float(np.exp(np.interp(logt, logf[keep], np.log(ebs)[keep])))


class ErrorBoundModel:
    """Learned mapping (features, target ratio) -> error bound.

    The regressor defaults to FXRZ's random forest; the future-work
    alternatives ("gbt", "knn") plug in via ``model_kind``.
    """

    def __init__(self) -> None:
        self.forest = None  # the fitted regressor (historic name)
        self.info: TrainingInfo | None = None
        self.feature_names: list[str] = []
        self._eb_range: tuple[float, float] = (1e-300, 1e300)

    def fit(
        self,
        training: TrainingData,
        method: str = "bayesopt",
        space: SearchSpace | None = None,
        n_iter: int = 10,
        cv: int = 3,
        seed: int = 0,
        checkpoint: list | None = None,
        model_kind: str = "forest",
    ) -> "ErrorBoundModel":
        X, y = training.design_matrix()
        self.forest, self.info = train_model(
            X, y, method=method, model_kind=model_kind, space=space,
            n_iter=n_iter, cv=cv, seed=seed, checkpoint=checkpoint,
        )
        self.feature_names = training.feature_names
        all_ebs = np.concatenate([r.error_bounds for r in training.records])
        # Clamp predictions into (an expanded copy of) the trained range —
        # the forest cannot extrapolate beyond its leaves anyway.
        self._eb_range = (float(all_ebs.min()) * 0.1, float(all_ebs.max()) * 10.0)
        return self

    def predict_error_bound(
        self, features: np.ndarray, target_ratio: float, safety: float = 0.0
    ) -> float:
        """Predict the error bound for ``target_ratio``.

        ``safety`` shifts the prediction by that many across-tree standard
        deviations in log-eb space. Positive values pick a *larger* error
        bound, i.e. bias toward overshooting the requested ratio — what a
        storage-quota consumer wants (a too-small file is fine, a too-large
        one breaks the budget). Negative values bias toward preserving
        quality instead. Only the forest model family carries a spread;
        other model kinds ignore ``safety``.
        """
        return self.predict_error_bound_with_std(features, target_ratio, safety=safety)[0]

    def predict_error_bound_with_std(
        self, features: np.ndarray, target_ratio: float, safety: float = 0.0
    ) -> tuple[float, float]:
        """:meth:`predict_error_bound` plus the model's own spread.

        Returns ``(error_bound, std)`` where ``std`` is the across-tree
        standard deviation in log-eb space *before* any ``safety`` shift —
        the confidence signal the control plane escalates on. Both values
        come from one ensemble pass (:meth:`RandomForestRegressor.predict_with_std`),
        and the error bound is bitwise-identical to the std-free call.
        Model kinds without a spread report ``nan`` (no signal), and so
        does a forest whose configuration makes every tree identical
        (``has_spread`` False) — its zero spread is degeneracy, not
        confidence.
        """
        if self.forest is None:
            raise RuntimeError("model is not fitted")
        if target_ratio <= 0:
            raise ValueError("target_ratio must be positive")
        x = np.concatenate((np.asarray(features, dtype=np.float64).ravel(),
                            [np.log(target_ratio)]))
        if hasattr(self.forest, "predict_with_std") and getattr(
            self.forest, "has_spread", True
        ):
            mean, spread = self.forest.predict_with_std(x[None, :])
            log_eb, std = float(mean[0]), float(spread[0])
        else:
            log_eb, std = float(self.forest.predict(x[None, :])[0]), float("nan")
        if safety and np.isfinite(std):
            log_eb += float(safety) * std
        eb = float(np.clip(np.exp(log_eb), *self._eb_range))
        return eb, std

    def predict_error_bound_batch(
        self, features: np.ndarray, target_ratios, safety: float = 0.0
    ) -> np.ndarray:
        """Vectorized :meth:`predict_error_bound` over stacked requests.

        ``features`` is either one vector (shared by every ratio) or an
        ``(n, d)`` matrix aligned with ``target_ratios``. The design matrix
        rows are built exactly as the scalar path builds its single row and
        every model predicts rows independently, so element ``i`` of the
        result is bitwise-identical to a scalar call with ``features[i]``
        and ``target_ratios[i]`` — the guarantee the serving layer's
        ``predict_batch`` relies on.
        """
        return self.predict_error_bound_batch_with_std(
            features, target_ratios, safety=safety
        )[0]

    def predict_error_bound_batch_with_std(
        self, features: np.ndarray, target_ratios, safety: float = 0.0
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`predict_error_bound_with_std`.

        Returns ``(error_bounds, stds)`` aligned with ``target_ratios``;
        the stds are the pre-``safety`` across-tree spreads from the same
        single ensemble pass that produced the error bounds. Model kinds
        without a spread — including a degenerate forest whose trees are
        all identical (``has_spread`` False) — report ``nan`` per element.
        """
        if self.forest is None:
            raise RuntimeError("model is not fitted")
        ratios = np.asarray(target_ratios, dtype=np.float64).ravel()
        if ratios.size == 0:
            return np.empty(0), np.empty(0)
        if np.any(ratios <= 0):
            raise ValueError("target_ratio must be positive")
        F = np.asarray(features, dtype=np.float64)
        if F.ndim == 1:
            F = np.broadcast_to(F, (ratios.size, F.size))
        elif F.shape[0] != ratios.size:
            raise ValueError(
                f"features rows ({F.shape[0]}) must match target_ratios ({ratios.size})"
            )
        X = np.column_stack((F, np.log(ratios)))
        if hasattr(self.forest, "predict_with_std") and getattr(
            self.forest, "has_spread", True
        ):
            mean, stds = self.forest.predict_with_std(X)
            log_eb = np.asarray(mean, dtype=np.float64)
            stds = np.asarray(stds, dtype=np.float64)
        else:
            log_eb = np.asarray(self.forest.predict(X), dtype=np.float64)
            stds = np.full(ratios.size, np.nan)
        if safety:
            shift = np.where(np.isfinite(stds), stds, 0.0)
            log_eb = log_eb + float(safety) * shift
        return np.clip(np.exp(log_eb), *self._eb_range), stds

    @property
    def checkpoint(self) -> list | None:
        return self.info.checkpoint if self.info else None
