"""Error-bound prediction from a trained model, plus the model-free baseline.

:class:`ErrorBoundModel` wraps the random forest: inputs are the five FXRZ
features plus log(target ratio), output is log(error bound) — the inference
path of both frameworks (Fig. 1).

:func:`invert_curve` is the model-free alternative (used by the ablation
bench): given a sampled compression function f(e), invert it by monotone
interpolation. It needs a measured/estimated curve for the *specific* input,
whereas the learned model generalizes across datasets from features alone.
"""

from __future__ import annotations

import numpy as np

from repro.core.collection import TrainingData
from repro.core.training import TrainingInfo, train_model
from repro.ml.space import SearchSpace


def invert_curve(error_bounds, ratios, target_ratio: float) -> float:
    """Error bound achieving ``target_ratio`` per a sampled curve f(e).

    The curve is first made monotone (running maximum — compressors are
    monotone up to measurement noise), then inverted by log-log linear
    interpolation; targets outside the sampled range clamp to the ends.
    """
    ebs = np.asarray(error_bounds, dtype=np.float64).ravel()
    f = np.asarray(ratios, dtype=np.float64).ravel()
    if ebs.size != f.size or ebs.size < 2:
        raise ValueError("need aligned curves with at least 2 points")
    if target_ratio <= 0:
        raise ValueError("target_ratio must be positive")
    order = np.argsort(ebs)
    ebs, f = ebs[order], np.maximum.accumulate(np.maximum(f[order], 1e-9))
    logf = np.log(f)
    logt = np.log(target_ratio)
    # np.interp needs strictly increasing x; collapse flat steps.
    keep = np.concatenate(([True], np.diff(logf) > 0))
    return float(np.exp(np.interp(logt, logf[keep], np.log(ebs)[keep])))


class ErrorBoundModel:
    """Learned mapping (features, target ratio) -> error bound.

    The regressor defaults to FXRZ's random forest; the future-work
    alternatives ("gbt", "knn") plug in via ``model_kind``.
    """

    def __init__(self) -> None:
        self.forest = None  # the fitted regressor (historic name)
        self.info: TrainingInfo | None = None
        self.feature_names: list[str] = []
        self._eb_range: tuple[float, float] = (1e-300, 1e300)

    def fit(
        self,
        training: TrainingData,
        method: str = "bayesopt",
        space: SearchSpace | None = None,
        n_iter: int = 10,
        cv: int = 3,
        seed: int = 0,
        checkpoint: list | None = None,
        model_kind: str = "forest",
    ) -> "ErrorBoundModel":
        X, y = training.design_matrix()
        self.forest, self.info = train_model(
            X, y, method=method, model_kind=model_kind, space=space,
            n_iter=n_iter, cv=cv, seed=seed, checkpoint=checkpoint,
        )
        self.feature_names = training.feature_names
        all_ebs = np.concatenate([r.error_bounds for r in training.records])
        # Clamp predictions into (an expanded copy of) the trained range —
        # the forest cannot extrapolate beyond its leaves anyway.
        self._eb_range = (float(all_ebs.min()) * 0.1, float(all_ebs.max()) * 10.0)
        return self

    def predict_error_bound(
        self, features: np.ndarray, target_ratio: float, safety: float = 0.0
    ) -> float:
        """Predict the error bound for ``target_ratio``.

        ``safety`` shifts the prediction by that many across-tree standard
        deviations in log-eb space. Positive values pick a *larger* error
        bound, i.e. bias toward overshooting the requested ratio — what a
        storage-quota consumer wants (a too-small file is fine, a too-large
        one breaks the budget). Negative values bias toward preserving
        quality instead. Only the forest model family carries a spread;
        other model kinds ignore ``safety``.
        """
        if self.forest is None:
            raise RuntimeError("model is not fitted")
        if target_ratio <= 0:
            raise ValueError("target_ratio must be positive")
        x = np.concatenate((np.asarray(features, dtype=np.float64).ravel(),
                            [np.log(target_ratio)]))
        log_eb = float(self.forest.predict(x[None, :])[0])
        if safety and hasattr(self.forest, "predict_std"):
            log_eb += float(safety) * float(self.forest.predict_std(x[None, :])[0])
        return float(np.clip(np.exp(log_eb), *self._eb_range))

    def predict_error_bound_batch(
        self, features: np.ndarray, target_ratios, safety: float = 0.0
    ) -> np.ndarray:
        """Vectorized :meth:`predict_error_bound` over stacked requests.

        ``features`` is either one vector (shared by every ratio) or an
        ``(n, d)`` matrix aligned with ``target_ratios``. The design matrix
        rows are built exactly as the scalar path builds its single row and
        every model predicts rows independently, so element ``i`` of the
        result is bitwise-identical to a scalar call with ``features[i]``
        and ``target_ratios[i]`` — the guarantee the serving layer's
        ``predict_batch`` relies on.
        """
        if self.forest is None:
            raise RuntimeError("model is not fitted")
        ratios = np.asarray(target_ratios, dtype=np.float64).ravel()
        if ratios.size == 0:
            return np.empty(0)
        if np.any(ratios <= 0):
            raise ValueError("target_ratio must be positive")
        F = np.asarray(features, dtype=np.float64)
        if F.ndim == 1:
            F = np.broadcast_to(F, (ratios.size, F.size))
        elif F.shape[0] != ratios.size:
            raise ValueError(
                f"features rows ({F.shape[0]}) must match target_ratios ({ratios.size})"
            )
        X = np.column_stack((F, np.log(ratios)))
        log_eb = np.asarray(self.forest.predict(X), dtype=np.float64)
        if safety and hasattr(self.forest, "predict_std"):
            log_eb = log_eb + float(safety) * np.asarray(
                self.forest.predict_std(X), dtype=np.float64
            )
        return np.clip(np.exp(log_eb), *self._eb_range)

    @property
    def checkpoint(self) -> list | None:
        return self.info.checkpoint if self.info else None
