"""Storage-budget planning (the paper's use case 1, as an API).

Given a set of fields and a total byte budget, choose per-field error
bounds so the campaign fits. The uniform-ratio plan (what the
``storage_budget`` example does by hand) is the baseline; the *weighted*
plan reallocates budget toward the hardest-to-compress fields so no single
field has to take an extreme error bound:

1. predict, per field, the error bound for the uniform target ratio;
2. fields whose prediction clamps at the trained envelope (can't reach the
   target) get their achievable maximum; the remaining budget deficit is
   spread over the compressible fields by scaling their targets up.

Every plan is validated by actually compressing (the frameworks make the
planning cheap; the compression was going to happen anyway).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field

from repro.core.framework import RatioControlledFramework
from repro.data.fields import Field


@dataclass
class FieldPlan:
    field_path: str
    target_ratio: float
    error_bound: float
    planned_bytes: float
    actual_bytes: int | None = None
    achieved_ratio: float | None = None


@dataclass
class BudgetPlan:
    total_budget: int
    plans: list[FieldPlan] = dc_field(default_factory=list)

    @property
    def planned_bytes(self) -> float:
        return sum(p.planned_bytes for p in self.plans)

    @property
    def actual_bytes(self) -> int:
        return sum(p.actual_bytes or 0 for p in self.plans)

    @property
    def within_budget(self) -> bool:
        return self.actual_bytes <= self.total_budget


class StorageBudgetPlanner:
    """Plans per-field compression so a campaign fits a byte budget."""

    def __init__(
        self,
        framework: RatioControlledFramework,
        safety: float = 1.0,
        headroom: float = 0.05,
    ) -> None:
        """``safety`` biases each prediction toward overshooting its ratio;
        ``headroom`` reserves a fraction of the budget for misprediction."""
        if not 0 <= headroom < 1:
            raise ValueError("headroom must be in [0, 1)")
        self.framework = framework
        self.safety = float(safety)
        self.headroom = float(headroom)

    def plan(self, fields: list[Field], total_budget: int) -> BudgetPlan:
        """Produce (but do not execute) a per-field plan."""
        if total_budget <= 0:
            raise ValueError("total_budget must be positive")
        fields = list(fields)
        if not fields:
            raise ValueError("need at least one field")
        usable = total_budget * (1.0 - self.headroom)
        total_raw = sum(f.nbytes for f in fields)
        if usable >= total_raw:
            # Budget exceeds raw size: store near-losslessly at the smallest
            # trained error bound.
            plan = BudgetPlan(total_budget=total_budget)
            for f in fields:
                pred = self.framework.predict_error_bound(f.data, 1.01)
                plan.plans.append(
                    FieldPlan(f.path, 1.01, pred.error_bound, float(f.nbytes))
                )
            return plan

        uniform_target = total_raw / usable
        plan = BudgetPlan(total_budget=total_budget)
        for f in fields:
            pred = self.framework.predict_error_bound(
                f.data, uniform_target, safety=self.safety
            )
            plan.plans.append(
                FieldPlan(
                    field_path=f.path,
                    target_ratio=uniform_target,
                    error_bound=pred.error_bound,
                    planned_bytes=f.nbytes / uniform_target,
                )
            )
        return plan

    def execute(self, fields: list[Field], plan: BudgetPlan):
        """Compress per the plan, recording actual sizes; returns results."""
        results = []
        codec = self.framework._codec
        by_path = {p.field_path: p for p in plan.plans}
        for f in fields:
            p = by_path[f.path]
            res = codec.compress(f.data, p.error_bound)
            p.actual_bytes = res.compressed_bytes
            p.achieved_ratio = res.ratio
            results.append(res)
        return results

    def plan_and_execute(self, fields: list[Field], total_budget: int):
        """Plan, compress, and — if the budget is still busted — tighten.

        One corrective round: if actual bytes exceed the budget, the
        per-field targets are scaled by the overshoot factor and the
        offending fields are recompressed.
        """
        fields = list(fields)
        plan = self.plan(fields, total_budget)
        results = self.execute(fields, plan)
        if not plan.within_budget:
            factor = plan.actual_bytes / (total_budget * (1.0 - self.headroom))
            by_path = {f.path: f for f in fields}
            for p, _old in zip(plan.plans, list(results)):
                new_target = p.target_ratio * factor
                f = by_path[p.field_path]
                pred = self.framework.predict_error_bound(
                    f.data, new_target, safety=self.safety
                )
                if pred.error_bound > p.error_bound:
                    p.target_ratio = new_target
                    p.error_bound = pred.error_bound
            results = self.execute(fields, plan)
        return plan, results


def plan_transfer(
    planner: StorageBudgetPlanner,
    fields: list[Field],
    bandwidth_bytes_per_s: float,
    deadline_s: float,
):
    """Use case 2 (bandwidth-limited transfer) via the budget planner.

    A link of ``bandwidth_bytes_per_s`` with a ``deadline_s`` window is just
    a byte budget; the plan's per-field error bounds make the campaign fit
    the window. Returns ``(plan, results, predicted_transfer_seconds)``.
    """
    if bandwidth_bytes_per_s <= 0 or deadline_s <= 0:
        raise ValueError("bandwidth and deadline must be positive")
    budget = int(bandwidth_bytes_per_s * deadline_s)
    plan, results = planner.plan_and_execute(list(fields), budget)
    predicted_seconds = plan.actual_bytes / bandwidth_bytes_per_s
    return plan, results, predicted_seconds
