"""Reconstructed-data quality metrics.

Used to reproduce the paper's Section 2.2 argument: fixed-rate compression
"cannot guarantee reconstructed data quality since it does not take into
account the values of the data points" — demonstrated by comparing PSNR at
matched ratios between fixed-rate ZFP and CAROL-driven error-bounded ZFP.
"""

from __future__ import annotations

import numpy as np


def max_abs_error(original: np.ndarray, reconstructed: np.ndarray) -> float:
    o = np.asarray(original, dtype=np.float64)
    r = np.asarray(reconstructed, dtype=np.float64)
    if o.shape != r.shape:
        raise ValueError("arrays must have the same shape")
    return float(np.abs(o - r).max())


def rmse(original: np.ndarray, reconstructed: np.ndarray) -> float:
    o = np.asarray(original, dtype=np.float64)
    r = np.asarray(reconstructed, dtype=np.float64)
    if o.shape != r.shape:
        raise ValueError("arrays must have the same shape")
    return float(np.sqrt(((o - r) ** 2).mean()))


def nrmse(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """RMSE normalized by the value range (SDRBench convention)."""
    o = np.asarray(original, dtype=np.float64)
    vrange = float(o.max() - o.min())
    if vrange == 0.0:
        return 0.0 if rmse(original, reconstructed) == 0.0 else float("inf")
    return rmse(original, reconstructed) / vrange


def psnr(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Peak signal-to-noise ratio in dB (peak = value range).

    Identical reconstruction returns ``inf``.
    """
    err = nrmse(original, reconstructed)
    if err == 0.0:
        return float("inf")
    return float(-20.0 * np.log10(err))
