"""Calibration of surrogate compression-ratio estimates (Section 5.2).

SECRE's estimates can be off by tens of percent on SZ3/SPERR, but the error
is *structured*: for a given dataset it is (mostly) one-sided and its curve
over the error bound is bi-modal (one slow and one fast region, or one
increasing and one decreasing region). CAROL therefore:

1. runs the *full* compressor at a few calibration points (3-5; Table 5);
2. compares true vs estimated ratio there to detect over/under-estimation;
3. interpolates the estimation-error curve between calibration points and
   rescales the surrogate estimate with it — Eqs. (3)/(4).

The paper writes the correction as ``f_CAL = f_SECRE / (100 -/+ alpha)``;
the dimensionally consistent form (used here and equal to the intended
semantics, since ``f_SECRE = f * (1 + alpha_signed/100)``) is

    f_CAL(e) = f_SECRE(e) / (1 + alpha_hat(e) / 100)

with ``alpha_hat`` the *signed* interpolated percentage error. For a purely
one-sided surrogate this is exactly the paper's over/under-estimation pair.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.compressors.base import LossyCompressor
from repro.core.metrics import signed_estimation_errors
from repro.obs import count, span


def correct_overestimation(f_secre: np.ndarray, alpha: np.ndarray) -> np.ndarray:
    """Paper Eq. (3) semantics: shrink an overestimated ratio by alpha%."""
    return np.asarray(f_secre) / (1.0 + np.abs(alpha) / 100.0)


def correct_underestimation(f_secre: np.ndarray, alpha: np.ndarray) -> np.ndarray:
    """Paper Eq. (4) semantics: grow an underestimated ratio by alpha%."""
    return np.asarray(f_secre) / (1.0 - np.abs(alpha) / 100.0)


@dataclass
class CalibrationInfo:
    """Everything measured during one calibration (feeds Tables 5, Fig. 10)."""

    calibration_ebs: np.ndarray
    true_ratios: np.ndarray
    estimated_at_points: np.ndarray
    signed_errors: np.ndarray  # percent, at the calibration points
    overestimating: bool
    compressor_seconds: float
    predicted_errors: np.ndarray = field(default_factory=lambda: np.zeros(0))

    @property
    def n_points(self) -> int:
        return int(self.calibration_ebs.size)


class Calibrator:
    """Corrects a surrogate curve using a few full-compressor runs."""

    def __init__(self, n_points: int = 4) -> None:
        if n_points < 2:
            raise ValueError("calibration needs at least 2 points")
        self.n_points = int(n_points)

    @staticmethod
    def _select_points(n_grid: int, n_points: int) -> np.ndarray:
        """Evenly spread calibration indices, endpoints included."""
        k = min(n_points, n_grid)
        return np.unique(np.round(np.linspace(0, n_grid - 1, k)).astype(int))

    def calibrate_curve(
        self,
        data: np.ndarray,
        error_bounds: np.ndarray,
        estimated_ratios: np.ndarray,
        compressor: LossyCompressor,
    ) -> tuple[np.ndarray, CalibrationInfo]:
        """Return ``(calibrated_ratios, info)`` for a surrogate curve.

        ``error_bounds`` must be sorted ascending (the collection grid is).
        """
        ebs = np.asarray(error_bounds, dtype=np.float64).ravel()
        est = np.asarray(estimated_ratios, dtype=np.float64).ravel()
        if ebs.size != est.size or ebs.size < 2:
            raise ValueError("need aligned grids with at least 2 points")
        if (np.diff(ebs) <= 0).any():
            raise ValueError("error_bounds must be strictly increasing")

        # Step 1: run the full compressor at the calibration points.
        pts = self._select_points(ebs.size, self.n_points)
        with span("collection.calibration", compressor=compressor.name,
                  n_points=int(pts.size)):
            t0 = time.perf_counter()
            true_pts = np.array(
                [compressor.compression_ratio(data, float(ebs[i])) for i in pts]
            )
            comp_seconds = time.perf_counter() - t0
        count("calibration.corrections")

        # Step 2: signed errors and over/under determination.
        signed = signed_estimation_errors(true_pts, est[pts])
        overestimating = bool(signed.mean() > 0)

        # Step 3: interpolate the error curve over log(eb) and rescale.
        alpha_hat = np.interp(np.log(ebs), np.log(ebs[pts]), signed)
        calibrated = est / (1.0 + alpha_hat / 100.0)

        info = CalibrationInfo(
            calibration_ebs=ebs[pts],
            true_ratios=true_pts,
            estimated_at_points=est[pts],
            signed_errors=signed,
            overestimating=overestimating,
            compressor_seconds=comp_seconds,
            predicted_errors=alpha_hat,
        )
        return calibrated, info
