"""Process-parallel training-data collection.

Section 3.2 (research objective 2) discusses the naive alternative to
CAROL's surrogate collection: "running multiple instances of the compressor
in parallel ... will cause a significant increase in the amount of compute
resources required." This module implements that baseline honestly so the
trade-off can be measured: a :class:`ParallelCollector` fans field-curve
collection out over worker processes, and reports both wall time and the
aggregate CPU-seconds consumed — the quantity the paper argues is the
wrong thing to scale.

Workers rebuild their collector from the (picklable) configuration; fields
are shipped once per task. On a laptop-scale dataset the speedup is bounded
by core count, while CAROL's surrogate collection cuts the *work*.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.core.collection import CurveRecord, TrainingCollector, TrainingData
from repro.data.fields import Field
from repro.obs import span


@dataclass
class ParallelCollectionReport:
    wall_seconds: float
    cpu_seconds: float  # sum of per-field collection times across workers
    n_workers: int


def _collect_one(args) -> CurveRecord:
    (compressor, mode, rel_ebs, calibration_points, dataset, name, data, timestep) = args
    collector = TrainingCollector(
        compressor,
        mode=mode,
        rel_error_bounds=rel_ebs,
        calibration_points=calibration_points,
    )
    field = Field(dataset=dataset, name=name, data=data, timestep=timestep)
    return collector.collect_field(field)


class ParallelCollector:
    """Fan one collection run out over a process pool."""

    def __init__(
        self,
        compressor: str,
        mode: str = "full",
        rel_error_bounds: np.ndarray | None = None,
        calibration_points: int = 4,
        n_workers: int | None = None,
    ) -> None:
        # Validate configuration eagerly via a throwaway serial collector.
        self._template = TrainingCollector(
            compressor,
            mode=mode,
            rel_error_bounds=rel_error_bounds,
            calibration_points=calibration_points,
        )
        self.compressor = compressor
        self.mode = mode
        self.calibration_points = int(calibration_points)
        self.n_workers = int(n_workers or os.cpu_count() or 1)

    def collect(self, fields: list[Field]) -> tuple[TrainingData, ParallelCollectionReport]:
        rel = self._template.rel_ebs
        tasks = [
            (
                self.compressor,
                self.mode,
                rel,
                self.calibration_points,
                f.dataset,
                f.name,
                f.data,
                f.timestep,
            )
            for f in fields
        ]
        # Worker processes have their own (disabled) observability state, so
        # per-field spans don't propagate back; one parent-side span covers
        # the whole fan-out instead.
        with span("collection.parallel", compressor=self.compressor, mode=self.mode,
                  n_fields=len(fields), n_workers=self.n_workers):
            start = time.perf_counter()
            if self.n_workers == 1 or len(fields) <= 1:
                records = [_collect_one(t) for t in tasks]
            else:
                with ProcessPoolExecutor(max_workers=self.n_workers) as pool:
                    records = list(pool.map(_collect_one, tasks))
            wall = time.perf_counter() - start

        data = TrainingData(compressor=self.compressor)
        for rec in records:
            data.records.append(rec)
            data.timing.add("collection", rec.collect_seconds)
        report = ParallelCollectionReport(
            wall_seconds=wall,
            cpu_seconds=sum(r.collect_seconds for r in records),
            n_workers=self.n_workers,
        )
        return data, report
