"""Compressor selection: which codec should serve a given request?

A downstream layer over the frameworks. Scientific pipelines rarely commit
to one compressor: the right codec depends on the target ratio (SZx/cuSZp
cannot reach thousands-x; SPERR/SZ3 can), on throughput needs, and on the
quality delivered at that ratio. :class:`CompressorSelector` fits one CAROL
instance per candidate codec on shared training fields, and per request
picks the codec predicted to meet the target — preferring the fastest one
that can, falling back to the highest-ratio one otherwise.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field as dc_field

import numpy as np

from repro.compressors.base import CompressionResult
from repro.core.carol import CarolFramework
from repro.core.framework import Prediction

#: speed rank, fastest first (the paper's throughput ordering)
_SPEED_ORDER = ("szx", "cuszp", "zfp", "sperr", "sz3")


@dataclass
class SelectionOutcome:
    compressor: str
    result: CompressionResult
    prediction: Prediction
    candidates: dict[str, float] = dc_field(default_factory=dict)  # codec -> predicted achievable?
    elapsed: float = 0.0


class CompressorSelector:
    """Per-request codec choice driven by the fitted CAROL models."""

    def __init__(
        self,
        compressors: tuple[str, ...] = ("szx", "zfp", "sz3", "sperr"),
        tolerance: float = 0.2,
        **framework_kwargs,
    ) -> None:
        if not compressors:
            raise ValueError("need at least one candidate compressor")
        self.tolerance = float(tolerance)
        self.frameworks: dict[str, CarolFramework] = {
            name: CarolFramework(compressor=name, **framework_kwargs)
            for name in compressors
        }
        self._fitted = False

    def fit(self, fields) -> dict[str, object]:
        """Fit every candidate's framework on the same training fields."""
        fields = list(fields)
        reports = {}
        for name, fw in self.frameworks.items():
            reports[name] = fw.fit(fields)
        self._fitted = True
        return reports

    def _achievable(self, fw: CarolFramework, target: float) -> bool:
        """Does the codec's trained ratio envelope cover the target?"""
        assert fw.training_data is not None
        top = max(float(rec.ratios.max()) for rec in fw.training_data.records)
        return target <= top * (1.0 + self.tolerance)

    def compress_to_ratio(self, data: np.ndarray, target_ratio: float) -> SelectionOutcome:
        """Pick a codec for this request and run it end to end.

        Preference: the fastest codec whose trained envelope covers the
        target; if none can reach it, the codec with the largest envelope.
        """
        if not self._fitted:
            raise RuntimeError("selector is not fitted")
        start = time.perf_counter()
        envelopes = {}
        for name, fw in self.frameworks.items():
            envelopes[name] = max(
                float(rec.ratios.max()) for rec in fw.training_data.records
            )
        chosen = None
        for name in _SPEED_ORDER:
            if name in self.frameworks and self._achievable(self.frameworks[name], target_ratio):
                chosen = name
                break
        if chosen is None:  # nobody reaches it: take the highest envelope
            chosen = max(envelopes, key=envelopes.get)
        result, pred = self.frameworks[chosen].compress_to_ratio(data, target_ratio)
        return SelectionOutcome(
            compressor=chosen,
            result=result,
            prediction=pred,
            candidates=envelopes,
            elapsed=time.perf_counter() - start,
        )
