"""Estimation-error metrics (paper Eqs. (1)-(2)).

The percentage estimation error of an estimate ``f_est`` against ground
truth ``f`` over a sample of error bounds:

    alpha_i = 100 * |f_est(e_i) - f(e_i)| / f(e_i)        (2)
    alpha   = mean_i alpha_i                              (1)

The same metric scores end-to-end frameworks, with ``f_est`` the ratio the
framework actually achieves for a requested ratio ``f``.
"""

from __future__ import annotations

import numpy as np


def signed_estimation_errors(true_ratios, estimated_ratios) -> np.ndarray:
    """Per-point signed percentage errors (positive = overestimate)."""
    t = np.asarray(true_ratios, dtype=np.float64).ravel()
    e = np.asarray(estimated_ratios, dtype=np.float64).ravel()
    if t.shape != e.shape:
        raise ValueError("true and estimated ratio arrays must align")
    if (t <= 0).any():
        raise ValueError("true ratios must be positive")
    return 100.0 * (e - t) / t


def estimation_error(true_ratios, estimated_ratios) -> float:
    """The paper's alpha: mean absolute percentage estimation error."""
    return float(np.abs(signed_estimation_errors(true_ratios, estimated_ratios)).mean())
