"""On-the-fly model improvement from serving-time feedback.

The paper's conclusion lists "a feedback loop enabling on-the-fly model
improvement" as future work. This module implements it: every served
request eventually yields a ground-truth observation — the compressor ran
at the predicted error bound and produced an *actual* ratio — which is a
perfect training row ``(features, log(actual_ratio)) -> log(error_bound)``
that cost nothing extra to measure.

:class:`FeedbackLoop` buffers those observations and, once enough accumulate
(or the rolling accuracy degrades past a threshold), folds them into the
framework's training data and re-trains — warm-started via the Bayesian
optimizer's checkpoint when the framework supports it (CAROL does; FXRZ's
grid search retrains from scratch, the exact asymmetry the paper motivates).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.collection import CurveRecord, TrainingData
from repro.core.framework import RatioControlledFramework


@dataclass
class FeedbackObservation:
    """One served request's outcome."""

    features: np.ndarray
    error_bound: float
    achieved_ratio: float
    target_ratio: float

    @property
    def relative_error(self) -> float:
        return abs(self.achieved_ratio - self.target_ratio) / self.target_ratio


@dataclass
class FeedbackLoop:
    """Accumulates serving-time feedback and triggers model refreshes.

    Parameters
    ----------
    framework:
        A *fitted* framework to improve.
    refresh_every:
        Re-train after this many new observations.
    error_threshold:
        Also re-train early whenever the rolling mean relative error of the
        last ``refresh_every`` requests exceeds this fraction.
    """

    framework: RatioControlledFramework
    refresh_every: int = 32
    error_threshold: float = 0.25
    observations: list[FeedbackObservation] = field(default_factory=list)
    _pending: list[FeedbackObservation] = field(default_factory=list)
    refreshes: int = 0

    #: Smallest window the error trigger trusts: a single bad observation
    #: must never cost a retrain, so the rolling-error refresh needs at
    #: least this many (and at least ``refresh_every // 4``) observations.
    MIN_ERROR_WINDOW = 2

    def __post_init__(self) -> None:
        if self.refresh_every < 1:
            raise ValueError("refresh_every must be >= 1")
        if self.error_threshold <= 0:
            raise ValueError("error_threshold must be > 0")

    def compress_to_ratio(self, data: np.ndarray, target_ratio: float):
        """Serve one request, recording its outcome as feedback."""
        result, pred = self.framework.compress_to_ratio(data, target_ratio)
        obs = FeedbackObservation(
            features=pred.features,
            error_bound=pred.error_bound,
            achieved_ratio=result.ratio,
            target_ratio=float(target_ratio),
        )
        self.observations.append(obs)
        self._pending.append(obs)
        if self._should_refresh():
            self.refresh()
        return result, pred

    def record(self, features: np.ndarray, error_bound: float,
               achieved_ratio: float, target_ratio: float) -> None:
        """Record feedback measured elsewhere (e.g. on another node)."""
        obs = FeedbackObservation(
            np.asarray(features, dtype=np.float64), float(error_bound),
            float(achieved_ratio), float(target_ratio),
        )
        self.observations.append(obs)
        self._pending.append(obs)
        if self._should_refresh():
            self.refresh()

    # -- internals -------------------------------------------------------------

    def _should_refresh(self) -> bool:
        if not self._pending:
            # An empty buffer can never justify a retrain (and must never
            # reach np.mean, which warns on empty input).
            return False
        if len(self._pending) >= self.refresh_every:
            return True
        recent = self._pending[-self.refresh_every :]
        if len(recent) < max(self.refresh_every // 4, 4, self.MIN_ERROR_WINDOW):
            # Too few observations for a stable error signal: one outlier
            # in a one- or two-element window is noise, not drift.
            return False
        mean_err = float(np.mean([o.relative_error for o in recent]))
        return mean_err > self.error_threshold

    def pending_training_data(self) -> TrainingData:
        """The buffered observations as a TrainingData batch.

        Each observation becomes a one-point "curve": the measured
        (error bound, achieved ratio) pair under the features active when
        it was served.
        """
        data = TrainingData(compressor=self.framework.compressor_name)
        for obs in self._pending:
            data.records.append(
                CurveRecord(
                    field_path="feedback",
                    features=obs.features,
                    error_bounds=np.array([obs.error_bound]),
                    ratios=np.array([max(obs.achieved_ratio, 1e-9)]),
                    source="feedback",
                )
            )
        return data

    def refresh(self) -> None:
        """Fold pending feedback into the model and re-train."""
        if not self._pending:
            return
        fw = self.framework
        fresh = self.pending_training_data()
        if fw.training_data is None:
            fw.training_data = fresh
        else:
            fw.training_data = fw.training_data.merge(fresh)
        checkpoint = fw.model.checkpoint  # None for FXRZ: cold re-train
        fw.model.fit(
            fw.training_data,
            method=fw.training_method,
            space=fw.space,
            n_iter=max(fw.n_iter // 2, 3) if checkpoint else fw.n_iter,
            cv=fw.cv,
            seed=fw.seed,
            checkpoint=checkpoint,
        )
        self._pending.clear()
        self.refreshes += 1

    @property
    def rolling_error(self) -> float:
        """Mean relative ratio error over the most recent window.

        Defined for any history size: an empty window reports 0.0 (no
        evidence of error — never ``nan``), and a single observation
        reports its own error.
        """
        recent = self.observations[-self.refresh_every :]
        if not recent:
            return 0.0
        return float(np.mean([o.relative_error for o in recent]))
