"""FXRZ: the baseline feature-driven fixed-ratio framework (ICDE'23).

Stage choices (paper Sections 2.2, 3.1):

- data collection runs the *full* compressor over the whole error-bound
  grid (65-85% of total setup time);
- model training is a randomized grid search (10 sampled configurations)
  with k-fold cross-validation — not warm-startable, so any new training
  data means searching from scratch;
- inference extracts the five features serially on a stride-4 point sample.
"""

from __future__ import annotations

import numpy as np

from repro.core.framework import RatioControlledFramework
from repro.features.serial import extract_features_serial, extract_features_serial_many


class FxrzFramework(RatioControlledFramework):
    """The paper's baseline framework."""

    name = "fxrz"
    collection_mode = "full"
    training_method = "grid"

    def __init__(
        self, compressor: str = "sz3", *, feature_stride: int = 4, **kwargs
    ) -> None:
        super().__init__(compressor, **kwargs)
        self.feature_stride = int(feature_stride)

    def _extract_features(self, data: np.ndarray) -> tuple[np.ndarray, float]:
        return extract_features_serial(data, stride=self.feature_stride)

    def _extract_features_many(self, arrays: list) -> tuple[np.ndarray, float]:
        return extract_features_serial_many(arrays, stride=self.feature_stride)
