"""FRaZ-style fixed-ratio control by iterative error-bound search.

FRaZ (Underwood et al., IPDPS'20 — the paper's reference [24]) achieves a
target ratio with *no* model at all: it repeatedly runs the real compressor,
searching the error bound until the measured ratio lands within a tolerance
of the target. Section 3.2 of the CAROL paper frames this as the bar a
learned framework must beat: "the framework should run no slower than its
underlying compressor" — FRaZ costs several full compressions per request,
which is untenable exactly for the slow high-ratio codecs where ratio
control matters most.

The search exploits the monotonicity of f(e): geometric bracketing followed
by bisection on log(error bound).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.compressors.base import CompressionResult
from repro.compressors.registry import get_compressor
from repro.utils.validation import as_float_array


@dataclass
class FrazResult:
    """Outcome of one fixed-ratio search."""

    result: CompressionResult
    error_bound: float
    target_ratio: float
    n_compressions: int
    elapsed: float
    converged: bool
    history: list[tuple[float, float]] = field(default_factory=list)  # (eb, ratio)

    @property
    def achieved_ratio(self) -> float:
        return self.result.ratio


class FrazSearch:
    """Model-free fixed-ratio compression via bounded bisection."""

    def __init__(
        self,
        compressor: str,
        tolerance: float = 0.05,
        max_iterations: int = 12,
        rel_eb_bracket: tuple[float, float] = (1e-6, 0.5),
    ) -> None:
        if tolerance <= 0:
            raise ValueError("tolerance must be > 0")
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        lo, hi = rel_eb_bracket
        if not 0 < lo < hi:
            raise ValueError("rel_eb_bracket must satisfy 0 < lo < hi")
        self.compressor_name = compressor
        self._codec = get_compressor(compressor)
        self.tolerance = float(tolerance)
        self.max_iterations = int(max_iterations)
        self.rel_eb_bracket = (float(lo), float(hi))

    def compress_to_ratio(
        self, data: np.ndarray, target_ratio: float, *, initial_eb: float | None = None
    ) -> FrazResult:
        """Search the error bound whose ratio matches ``target_ratio``.

        ``initial_eb`` warm-starts the search: instead of bracketing the
        whole relative-eb range from both ends (the cold path, unchanged),
        the guess is compressed first and the bracket grows geometrically
        *around it* in whichever direction the measured ratio missed. A
        guess from a surrogate curve or a model prediction is usually
        within a factor of a few of the answer, so the warm search spends
        1–3 compressions where the cold bracket spends its full budget.
        """
        if target_ratio <= 0:
            raise ValueError("target_ratio must be positive")
        if initial_eb is not None and initial_eb <= 0:
            raise ValueError("initial_eb must be positive")
        arr = as_float_array(data)
        vrange = float(arr.max() - arr.min()) or 1.0
        lo = np.log(self.rel_eb_bracket[0] * vrange)
        hi = np.log(self.rel_eb_bracket[1] * vrange)

        start = time.perf_counter()
        history: list[tuple[float, float]] = []
        best: CompressionResult | None = None
        best_eb = float(np.exp(0.5 * (lo + hi)))
        best_gap = np.inf
        converged = False

        def run(log_eb: float) -> float:
            nonlocal best, best_eb, best_gap, converged
            eb = float(np.exp(log_eb))
            res = self._codec.compress(arr, eb)
            history.append((eb, res.ratio))
            gap = abs(res.ratio - target_ratio) / target_ratio
            if gap < best_gap:
                best, best_eb, best_gap = res, eb, gap
            if gap <= self.tolerance:
                converged = True
            return res.ratio

        if initial_eb is not None:
            self._warm_search(
                run, float(initial_eb), lo, hi, target_ratio, history,
                done=lambda: converged,
            )
        else:
            # Check the bracket ends first: targets outside the achievable
            # range converge to the nearest end.
            r_lo = run(lo)
            if not converged and target_ratio <= r_lo:
                pass  # lowest eb already at/above target; best is the lo end
            else:
                r_hi = run(hi) if not converged else None
                if not converged and r_hi is not None and target_ratio >= r_hi:
                    pass  # target beyond the largest achievable ratio
                else:
                    while not converged and len(history) < self.max_iterations:
                        mid = 0.5 * (lo + hi)
                        r_mid = run(mid)
                        if r_mid < target_ratio:
                            lo = mid
                        else:
                            hi = mid

        assert best is not None
        return FrazResult(
            result=best,
            error_bound=best_eb,
            target_ratio=float(target_ratio),
            n_compressions=len(history),
            elapsed=time.perf_counter() - start,
            converged=converged,
            history=history,
        )

    def _warm_search(
        self, run, initial_eb: float, lo_abs: float, hi_abs: float,
        target_ratio: float, history: list, done,
    ) -> None:
        """Bracket geometrically around ``initial_eb``, then bisect.

        The guess is measured first; the bracket then grows by a log step
        that *doubles with each probe* in whichever direction the ratio
        missed, clamped to the absolute ``rel_eb_bracket`` ends, and the
        usual bisection finishes inside it. Accelerating the step keeps
        the compression count logarithmic in how wrong the guess is: a
        guess off by three orders of magnitude brackets in ~3 probes
        where a constant step would burn the whole budget walking. Every
        compression goes through ``run`` (which tracks best/converged);
        ``done()`` reads the convergence flag.
        """
        grow = float(np.log(4.0))
        log0 = float(np.clip(np.log(initial_eb), lo_abs, hi_abs))
        r0 = run(log0)
        if done():
            return
        if r0 < target_ratio:
            # eb too small (ratio under target): expand upward.
            lo, hi, probe = log0, None, log0
            while hi is None and len(history) < self.max_iterations:
                if probe >= hi_abs:
                    return  # target beyond the achievable range; best is the end
                probe = min(probe + grow, hi_abs)
                grow *= 2.0
                if run(probe) >= target_ratio:
                    hi = probe
                else:
                    lo = probe
                if done():
                    return
        else:
            # eb too large (ratio over target): expand downward.
            lo, hi, probe = None, log0, log0
            while lo is None and len(history) < self.max_iterations:
                if probe <= lo_abs:
                    return
                probe = max(probe - grow, lo_abs)
                grow *= 2.0
                if run(probe) < target_ratio:
                    lo = probe
                else:
                    hi = probe
                if done():
                    return
        if lo is None or hi is None:
            return
        while not done() and len(history) < self.max_iterations:
            mid = 0.5 * (lo + hi)
            if run(mid) < target_ratio:
                lo = mid
            else:
                hi = mid
