"""Training-data collection for the ratio-controlled frameworks.

A collection run takes a list of fields and produces, per field, the
features vector plus the sampled compression function f(e) over an
error-bound grid. Three modes:

- ``"full"``     — run the real compressor at every grid point (FXRZ;
  the dominant setup cost, 65-85% of FXRZ's total);
- ``"secre"``    — surrogate estimation only (fast, possibly biased);
- ``"calibrated"`` — surrogate + CAROL's calibration (CAROL's default).

The grid is relative to each field's value range (``rel_error_bounds``),
the convention used for SDRBench evaluations.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field as dc_field

import numpy as np

from repro.compressors.registry import get_compressor
from repro.core.calibration import CalibrationInfo, Calibrator
from repro.data.fields import Field
from repro.features.definitions import FEATURE_NAMES
from repro.features.serial import extract_features_serial
from repro.obs import count, span
from repro.surrogate.registry import get_surrogate
from repro.utils.timing import TimingRecord

#: Default relative error-bound grid (the paper interpolates f(e) from 35
#: sampled error bounds; benches may pass a smaller grid for speed).
DEFAULT_REL_EBS = np.geomspace(1e-4, 1e-1, 35)

COLLECTION_MODES = ("full", "secre", "calibrated")


@dataclass
class CurveRecord:
    """One field's contribution to the training set."""

    field_path: str
    features: np.ndarray  # the five FXRZ features
    error_bounds: np.ndarray  # absolute, ascending
    ratios: np.ndarray  # f(e) on the grid (measured or estimated)
    source: str  # collection mode that produced `ratios`
    collect_seconds: float = 0.0
    calibration: CalibrationInfo | None = None


@dataclass
class TrainingData:
    """Collected records plus the design-matrix view the models train on."""

    compressor: str
    records: list[CurveRecord] = dc_field(default_factory=list)
    timing: TimingRecord = dc_field(default_factory=TimingRecord)

    @property
    def n_rows(self) -> int:
        return sum(r.error_bounds.size for r in self.records)

    def design_matrix(self) -> tuple[np.ndarray, np.ndarray]:
        """``X = [five features..., log(ratio)]``, ``y = log(error_bound)``.

        Log transforms keep both the target and the ratio input on the
        scales where compressor behaviour is close to linear.
        """
        if not self.records:
            raise ValueError("no training records collected")
        Xs, ys = [], []
        for rec in self.records:
            n = rec.error_bounds.size
            feats = np.repeat(rec.features[None, :], n, axis=0)
            Xs.append(np.column_stack((feats, np.log(np.maximum(rec.ratios, 1e-9)))))
            ys.append(np.log(rec.error_bounds))
        return np.vstack(Xs), np.concatenate(ys)

    def merge(self, other: "TrainingData") -> "TrainingData":
        if other.compressor != self.compressor:
            raise ValueError("cannot merge training data for different compressors")
        merged = TrainingData(compressor=self.compressor, records=self.records + other.records)
        merged.timing.merge(self.timing)
        merged.timing.merge(other.timing)
        return merged

    @property
    def feature_names(self) -> list[str]:
        return list(FEATURE_NAMES) + ["log_ratio"]


class TrainingCollector:
    """Collects (features, f(e)) training curves for one compressor."""

    def __init__(
        self,
        compressor: str,
        mode: str = "full",
        rel_error_bounds: np.ndarray | None = None,
        calibration_points: int = 4,
        feature_stride: int | None = 4,
    ) -> None:
        if mode not in COLLECTION_MODES:
            raise ValueError(f"mode must be one of {COLLECTION_MODES}")
        self.compressor_name = compressor
        self.mode = mode
        self.rel_ebs = (
            np.asarray(rel_error_bounds, dtype=np.float64)
            if rel_error_bounds is not None
            else DEFAULT_REL_EBS.copy()
        )
        if (np.diff(self.rel_ebs) <= 0).any():
            raise ValueError("rel_error_bounds must be strictly increasing")
        self.calibration_points = int(calibration_points)
        self.feature_stride = feature_stride
        self._codec = get_compressor(compressor)
        self._surrogate = get_surrogate(compressor)

    def collect_field(self, field: Field) -> CurveRecord:
        ebs = self.rel_ebs * max(field.value_range, 1e-30)
        with span(
            "collection.field",
            field=field.path,
            mode=self.mode,
            compressor=self.compressor_name,
            n_points=int(ebs.size),
        ):
            feats, feat_s = extract_features_serial(field.data, stride=self.feature_stride)
            t0 = time.perf_counter()
            calibration: CalibrationInfo | None = None
            if self.mode == "full":
                ratios = np.array(
                    [self._codec.compression_ratio(field.data, float(eb)) for eb in ebs]
                )
            else:
                ratios, _ = self._surrogate.estimate_curve(field.data, ebs)
                if self.mode == "calibrated":
                    calibrator = Calibrator(n_points=self.calibration_points)
                    ratios, calibration = calibrator.calibrate_curve(
                        field.data, ebs, ratios, self._codec
                    )
            collect_s = time.perf_counter() - t0
        count("collection.fields")
        count("collection.curve_points", int(ebs.size))
        return CurveRecord(
            field_path=field.path,
            features=feats,
            error_bounds=ebs,
            ratios=ratios,
            source=self.mode,
            collect_seconds=collect_s + feat_s,
            calibration=calibration,
        )

    def collect(self, fields: list[Field]) -> TrainingData:
        data = TrainingData(compressor=self.compressor_name)
        for field in fields:
            rec = self.collect_field(field)
            data.records.append(rec)
            data.timing.add("collection", rec.collect_seconds)
        return data
