"""CAROL and FXRZ ratio-controlled compression frameworks.

- :mod:`repro.core.metrics` — the paper's estimation-error metric (Eqs. 1-2);
- :mod:`repro.core.calibration` — surrogate-error calibration (Section 5.2);
- :mod:`repro.core.collection` — training-data collection, full-compressor
  (FXRZ) and surrogate/calibrated (CAROL) modes;
- :mod:`repro.core.training` — model training via randomized grid search
  (FXRZ) or checkpointable Bayesian optimization (CAROL), Section 5.3;
- :mod:`repro.core.prediction` — error-bound prediction and the
  monotone-curve-inversion baseline;
- :mod:`repro.core.fxrz` / :mod:`repro.core.carol` — the end-to-end
  frameworks.
"""

from repro.core.calibration import CalibrationInfo, Calibrator
from repro.core.carol import CarolFramework
from repro.core.collection import CurveRecord, TrainingCollector, TrainingData
from repro.core.framework import BatchPrediction
from repro.core.fxrz import FxrzFramework
from repro.core.metrics import estimation_error, signed_estimation_errors
from repro.core.prediction import ErrorBoundModel, invert_curve

__all__ = [
    "BatchPrediction",
    "Calibrator",
    "CalibrationInfo",
    "TrainingCollector",
    "TrainingData",
    "CurveRecord",
    "ErrorBoundModel",
    "invert_curve",
    "FxrzFramework",
    "CarolFramework",
    "estimation_error",
    "signed_estimation_errors",
]
