"""CAROL: the paper's contribution — fast, scalable ratio control.

The four core contributions map onto the three pipeline stages:

1. collection uses the SECRE surrogate instead of the full compressor;
2. plus the calibration pass (a few full-compressor points) to remove the
   surrogate's systematic error;
3. training is Bayesian optimization whose observation list checkpoints,
   enabling warm-started incremental refinement (:meth:`refine`);
4. inference extracts features with the block-parallel (GPU-kernel-style)
   extractor.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.framework import RatioControlledFramework, SetupReport
from repro.features.parallel import extract_features_parallel


class CarolFramework(RatioControlledFramework):
    """Calibrated-surrogate + Bayesian-optimization framework."""

    name = "carol"
    collection_mode = "calibrated"
    training_method = "bayesopt"

    def _extract_features(self, data: np.ndarray) -> tuple[np.ndarray, float]:
        return extract_features_parallel(data)

    def refine(self, new_fields) -> SetupReport:
        """Incrementally refine the model with newly arrived fields.

        Collects curves for the new fields only, merges them into the
        training set, and re-trains with the Bayesian optimizer warm-started
        from the previous search's observations — the "checkpointing of the
        training process" of Section 5.3. FXRZ has no equivalent: its grid
        search must restart from scratch.
        """
        if self.training_data is None:
            return self.fit(new_fields)
        checkpoint = self.model.checkpoint
        collector = self._make_collector()
        t0 = time.perf_counter()
        fresh = collector.collect(list(new_fields))
        collect_s = time.perf_counter() - t0
        self.training_data = self.training_data.merge(fresh)

        t1 = time.perf_counter()
        self.model.fit(
            self.training_data,
            method=self.training_method,
            space=self.space,
            n_iter=self.n_iter,
            cv=self.cv,
            seed=self.seed,
            checkpoint=checkpoint,
            model_kind=self.model_kind,
        )
        train_s = time.perf_counter() - t1
        self.setup_report = SetupReport(
            framework=self.name,
            compressor=self.compressor_name,
            collection_seconds=collect_s,
            training_seconds=train_s,
            n_rows=self.training_data.n_rows,
            training_info=self.model.info,
        )
        return self.setup_report
