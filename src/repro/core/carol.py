"""CAROL: the paper's contribution — fast, scalable ratio control.

The four core contributions map onto the three pipeline stages:

1. collection uses the SECRE surrogate instead of the full compressor;
2. plus the calibration pass (a few full-compressor points) to remove the
   surrogate's systematic error;
3. training is Bayesian optimization whose observation list checkpoints,
   so the base class's :meth:`~RatioControlledFramework.refine` is
   warm-started, enabling incremental refinement on new data;
4. inference extracts features with the block-parallel (GPU-kernel-style)
   extractor.
"""

from __future__ import annotations

import numpy as np

from repro.core.framework import RatioControlledFramework
from repro.features.parallel import (
    extract_features_parallel,
    extract_features_parallel_many,
)


class CarolFramework(RatioControlledFramework):
    """Calibrated-surrogate + Bayesian-optimization framework."""

    name = "carol"
    collection_mode = "calibrated"
    training_method = "bayesopt"

    def _extract_features(self, data: np.ndarray) -> tuple[np.ndarray, float]:
        return extract_features_parallel(data)

    def _extract_features_many(self, arrays: list) -> tuple[np.ndarray, float]:
        return extract_features_parallel_many(arrays)
