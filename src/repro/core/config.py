"""Declarative framework configuration.

Experiments should be reproducible from a single artifact: a
:class:`FrameworkConfig` captures everything that determines a fit —
framework kind, compressor, error-bound grid, trainer budget, calibration
points, model family — and round-trips through a plain JSON dict, so a
training run can be pinned in a config file and rebuilt bit-for-bit
(modulo wall clock) anywhere.

Used by the CLI's ``train --config`` path and by the benchmark harnesses'
provenance records.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

_FRAMEWORKS = ("carol", "fxrz")


@dataclass
class FrameworkConfig:
    """Everything that determines a framework fit."""

    framework: str = "carol"
    compressor: str = "sz3"
    rel_eb_min: float = 1e-3
    rel_eb_max: float = 1e-1
    n_error_bounds: int = 16
    n_iter: int = 8
    cv: int = 3
    seed: int = 0
    calibration_points: int = 4
    model_kind: str = "forest"
    datasets: list[str] = field(default_factory=lambda: ["miranda"])
    shape: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if self.framework not in _FRAMEWORKS:
            raise ValueError(f"framework must be one of {_FRAMEWORKS}")
        if not 0 < self.rel_eb_min < self.rel_eb_max:
            raise ValueError("need 0 < rel_eb_min < rel_eb_max")
        if self.n_error_bounds < 2:
            raise ValueError("n_error_bounds must be >= 2")
        if self.n_iter < 1 or self.cv < 2:
            raise ValueError("n_iter must be >= 1 and cv >= 2")
        if self.shape is not None:
            self.shape = tuple(int(s) for s in self.shape)

    # -- construction -----------------------------------------------------

    def rel_error_bounds(self) -> np.ndarray:
        return np.geomspace(self.rel_eb_min, self.rel_eb_max, self.n_error_bounds)

    def build(self):
        """Instantiate the configured (unfitted) framework."""
        from repro.core.carol import CarolFramework
        from repro.core.fxrz import FxrzFramework

        cls = CarolFramework if self.framework == "carol" else FxrzFramework
        return cls(
            compressor=self.compressor,
            rel_error_bounds=self.rel_error_bounds(),
            n_iter=self.n_iter,
            cv=self.cv,
            seed=self.seed,
            calibration_points=self.calibration_points,
            model_kind=self.model_kind,
        )

    def load_training_fields(self):
        """Materialize the configured training fields."""
        from repro.data.datasets import load_dataset

        kwargs = {"shape": self.shape} if self.shape else {}
        fields = []
        for ds in self.datasets:
            fields.extend(load_dataset(ds, **kwargs))
        return fields

    def fit(self):
        """Build the framework and fit it on the configured datasets."""
        fw = self.build()
        fw.fit(self.load_training_fields())
        return fw

    # -- (de)serialization ---------------------------------------------------

    def to_dict(self) -> dict:
        out = asdict(self)
        if out["shape"] is not None:
            out["shape"] = list(out["shape"])
        return out

    @classmethod
    def from_dict(cls, raw: dict) -> "FrameworkConfig":
        known = {f.name for f in cls.__dataclass_fields__.values()}
        unknown = set(raw) - known
        if unknown:
            raise ValueError(f"unknown config keys: {sorted(unknown)}")
        return cls(**raw)

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "FrameworkConfig":
        return cls.from_dict(json.loads(Path(path).read_text()))
