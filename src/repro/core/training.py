"""Model training for the frameworks (Section 5.3).

Two trainers over a pluggable model family (random forest by default, plus
the future-work alternatives in :mod:`repro.ml.models`):

- ``method="grid"`` — FXRZ's randomized grid search with k-fold CV;
- ``method="bayesopt"`` — CAROL's GP Bayesian optimization; accepts a
  checkpoint (observation list) from a previous run for warm-started
  incremental refinement.

Both return the refit winner plus a :class:`TrainingInfo` with timing and
search history so the Fig. 5 / Fig. 8 harnesses need no extra hooks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.ml.bayesopt import BayesianOptimizer, BOResult
from repro.ml.kfold import KFold, cross_val_score
from repro.ml.models import default_space, make_model
from repro.ml.space import SearchSpace
from repro.obs import span


@dataclass
class TrainingInfo:
    method: str
    best_params: dict
    best_score: float
    elapsed: float
    n_evaluations: int
    checkpoint: list | None = None  # BO observations for warm restarts
    history: list = field(default_factory=list)
    model_kind: str = "forest"


def _cv_objective(X: np.ndarray, y: np.ndarray, cv: int, seed: int, kind: str):
    kfold = KFold(n_splits=cv, random_state=seed)

    def objective(params: dict) -> float:
        scores = cross_val_score(
            lambda: make_model(kind, random_state=seed, **params), X, y, cv=kfold
        )
        return float(scores.mean())

    return objective


def train_model(
    X: np.ndarray,
    y: np.ndarray,
    method: str = "bayesopt",
    model_kind: str = "forest",
    space: SearchSpace | None = None,
    n_iter: int = 10,
    cv: int = 3,
    seed: int = 0,
    checkpoint: list | None = None,
) -> tuple[object, TrainingInfo]:
    """Search hyper-parameters, refit the winner, return (model, info)."""
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64).ravel()
    cv = min(cv, X.shape[0])
    space = space if space is not None else default_space(model_kind)
    start = time.perf_counter()

    if method == "grid":
        from repro.ml.grid_search import RandomizedGridSearch

        search = RandomizedGridSearch(
            space, n_iter=n_iter, cv=cv, random_state=seed, model_kind=model_kind
        )
        with span("training.search", method="grid", model_kind=model_kind,
                  n_iter=n_iter, cv=cv, n_rows=X.shape[0]):
            result = search.fit(X, y)
        info = TrainingInfo(
            method="grid",
            best_params=result.best_params,
            best_score=result.best_score,
            elapsed=time.perf_counter() - start,
            n_evaluations=len(result.records),
            history=result.records,
            model_kind=model_kind,
        )
        return result.model, info

    if method == "bayesopt":
        optimizer = BayesianOptimizer(
            space,
            n_initial=max(min(n_iter // 2, 5), 2),
            random_state=seed,
            observations=checkpoint,
        )
        # A warm-started refresh needs fewer fresh evaluations — the paper's
        # "checkpointing of the training process".
        iters = max(n_iter // 2, 3) if checkpoint else n_iter
        with span("training.search", method="bayesopt", model_kind=model_kind,
                  n_iter=iters, cv=cv, n_rows=X.shape[0],
                  warm_start=checkpoint is not None):
            result: BOResult = optimizer.run(
                _cv_objective(X, y, cv, seed, model_kind), n_iter=iters
            )
        model = make_model(model_kind, random_state=seed, **result.best_params).fit(X, y)
        info = TrainingInfo(
            method="bayesopt",
            best_params=result.best_params,
            best_score=result.best_score,
            elapsed=time.perf_counter() - start,
            n_evaluations=len(result.history),
            checkpoint=optimizer.checkpoint(),
            history=result.history,
            model_kind=model_kind,
        )
        return model, info

    raise ValueError("method must be 'grid' or 'bayesopt'")


def train_forest(
    X: np.ndarray,
    y: np.ndarray,
    method: str = "bayesopt",
    space: SearchSpace | None = None,
    n_iter: int = 10,
    cv: int = 3,
    seed: int = 0,
    checkpoint: list | None = None,
):
    """Backward-compatible wrapper: train a random forest."""
    return train_model(
        X, y, method=method, model_kind="forest", space=space,
        n_iter=n_iter, cv=cv, seed=seed, checkpoint=checkpoint,
    )
