"""Shared machinery of the FXRZ and CAROL frameworks.

Both frameworks are the same three-stage pipeline (Fig. 1) with different
stage implementations:

=============  ======================  ===============================
stage          FXRZ                    CAROL
=============  ======================  ===============================
collection     full compressor         SECRE surrogate + calibration
training       randomized grid search  Bayesian opt. (checkpointable)
inference      serial sampled feats    block-parallel feats
=============  ======================  ===============================

Stage timings come from :mod:`repro.obs` spans: the same measurement
that lands in a ``--trace`` JSON also populates :class:`SetupReport` and
:class:`Prediction`, so traces and reports agree by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field

import numpy as np

from repro.compressors.base import CompressionResult
from repro.compressors.registry import get_compressor
from repro.core.collection import TrainingCollector, TrainingData
from repro.core.metrics import estimation_error
from repro.core.prediction import ErrorBoundModel
from repro.core.training import TrainingInfo
from repro.ml.space import SearchSpace
from repro.obs import timed_span
from repro.utils.validation import as_float_array


@dataclass
class SetupReport:
    """Timing breakdown of one fit() call (feeds Fig. 8)."""

    framework: str
    compressor: str
    collection_seconds: float
    training_seconds: float
    n_rows: int
    training_info: TrainingInfo | None = None

    @property
    def total_seconds(self) -> float:
        return self.collection_seconds + self.training_seconds


@dataclass
class Prediction:
    """One inference call's outcome (feeds Fig. 9).

    ``std`` is the model's own confidence signal: the across-tree
    standard deviation of the predicted log error bound (*before* any
    ``safety`` shift), from the same single ensemble pass that produced
    the prediction. ``nan`` means the model kind exposes no spread.
    """

    error_bound: float
    target_ratio: float
    features: np.ndarray
    feature_seconds: float
    inference_seconds: float
    std: float = float("nan")


@dataclass
class BatchPrediction:
    """One ``predict_error_bound_batch`` call: shared feature pass + stacked inference.

    Mirrors :class:`EvaluationReport`'s accounting: the (single) feature
    extraction is charged here, not faked onto any one prediction, and the
    stacked model call's time lives in ``inference_seconds``.
    """

    predictions: list[Prediction]
    feature_seconds: float
    inference_seconds: float

    @property
    def error_bounds(self) -> np.ndarray:
        return np.array([p.error_bound for p in self.predictions])

    @property
    def stds(self) -> np.ndarray:
        """Per-prediction model spread (``nan`` where the model has none)."""
        return np.array([p.std for p in self.predictions])

    def __iter__(self):
        return iter(self.predictions)

    def __len__(self) -> int:
        return len(self.predictions)


@dataclass
class EvaluationReport:
    """Requested-vs-achieved ratios on one test input (Tables 3, Fig. 7).

    Features are extracted once for every target, so their cost lives
    here (``feature_seconds``) rather than being faked onto the first
    :class:`Prediction`.
    """

    targets: np.ndarray
    achieved: np.ndarray
    predicted_ebs: np.ndarray
    alpha: float
    predictions: list[Prediction] = dc_field(default_factory=list)
    feature_seconds: float = 0.0

    @property
    def inference_seconds(self) -> float:
        """Total model time across targets plus the shared feature pass."""
        return self.feature_seconds + sum(p.inference_seconds for p in self.predictions)


class RatioControlledFramework:
    """Base class; subclasses set the three stage implementations.

    All configuration past ``compressor`` is keyword-only — the stable
    construction surface exposed by :mod:`repro.api`.
    """

    name = "abstract"
    collection_mode = "full"
    training_method = "grid"

    def __init__(
        self,
        compressor: str = "sz3",
        *,
        rel_error_bounds: np.ndarray | None = None,
        space: SearchSpace | None = None,
        n_iter: int = 8,
        cv: int = 3,
        seed: int = 0,
        calibration_points: int = 4,
        model_kind: str = "forest",
    ) -> None:
        self.compressor_name = compressor
        self._codec = get_compressor(compressor)
        self.rel_error_bounds = rel_error_bounds
        self.space = space
        self.n_iter = int(n_iter)
        self.cv = int(cv)
        self.seed = int(seed)
        self.calibration_points = int(calibration_points)
        self.model_kind = model_kind
        self.model = ErrorBoundModel()
        self.training_data: TrainingData | None = None
        self.setup_report: SetupReport | None = None

    # -- stage hooks (overridden per framework) --------------------------------

    def _extract_features(self, data: np.ndarray) -> tuple[np.ndarray, float]:
        raise NotImplementedError

    def _extract_features_many(self, arrays: list) -> tuple[np.ndarray, float]:
        """Stacked multi-field extraction; subclasses override with the
        batched entry points of :mod:`repro.features`."""
        rows, total = [], 0.0
        for arr in arrays:
            feats, secs = self._extract_features(arr)
            rows.append(feats)
            total += secs
        return (np.stack(rows) if rows else np.empty((0, 0))), total

    def extract_features(self, data: np.ndarray) -> np.ndarray:
        """Public feature hook: the feature vector for one input.

        This is the value ``predict_error_bound(..., features=...)`` accepts
        back — the cache hook point the serving layer keys on (extract once
        per distinct input, reuse across requests and targets).
        """
        return self._extract_features(as_float_array(data))[0]

    def extract_features_many(self, datas) -> np.ndarray:
        """Stacked ``(n, d)`` feature matrix for several inputs; row ``i``
        is bitwise-identical to ``extract_features(datas[i])``."""
        return self._extract_features_many([as_float_array(d) for d in datas])[0]

    def _make_collector(self) -> TrainingCollector:
        return TrainingCollector(
            self.compressor_name,
            mode=self.collection_mode,
            rel_error_bounds=self.rel_error_bounds,
            calibration_points=self.calibration_points,
        )

    # -- setup ------------------------------------------------------------------

    def fit(self, fields, checkpoint: list | None = None) -> SetupReport:
        """Collect training data and train the error-bound model."""
        return self._run_setup(list(fields), checkpoint=checkpoint, merge=False)

    def refine(self, new_fields) -> SetupReport:
        """Incrementally refine the model with newly arrived fields.

        Collects curves for the new fields only, merges them into the
        training set, and re-trains. Trainers that checkpoint (CAROL's
        Bayesian optimizer) warm-start from the previous search's
        observations — the "checkpointing of the training process" of
        Section 5.3; non-resumable trainers (FXRZ's grid search) simply
        re-search on the merged data. Falls back to :meth:`fit` when
        nothing has been collected yet.
        """
        if self.training_data is None:
            return self.fit(new_fields)
        return self._run_setup(
            list(new_fields), checkpoint=self.model.checkpoint, merge=True
        )

    def _run_setup(self, fields, checkpoint: list | None, merge: bool) -> SetupReport:
        with timed_span(
            "fit.collection",
            framework=self.name,
            compressor=self.compressor_name,
            mode=self.collection_mode,
            n_fields=len(fields),
        ) as sp_collect:
            collector = self._make_collector()
            fresh = collector.collect(fields)
        self.training_data = self.training_data.merge(fresh) if merge else fresh

        with timed_span(
            "fit.training",
            framework=self.name,
            method=self.training_method,
            model_kind=self.model_kind,
            n_rows=self.training_data.n_rows,
            warm_start=checkpoint is not None,
        ) as sp_train:
            self.model.fit(
                self.training_data,
                method=self.training_method,
                space=self.space,
                n_iter=self.n_iter,
                cv=self.cv,
                seed=self.seed,
                checkpoint=checkpoint,
                model_kind=self.model_kind,
            )
        self.setup_report = SetupReport(
            framework=self.name,
            compressor=self.compressor_name,
            collection_seconds=sp_collect.elapsed,
            training_seconds=sp_train.elapsed,
            n_rows=self.training_data.n_rows,
            training_info=self.model.info,
        )
        return self.setup_report

    # -- inference -----------------------------------------------------------------

    def predict_error_bound(
        self,
        data: np.ndarray,
        target_ratio: float,
        *,
        safety: float = 0.0,
        features: np.ndarray | None = None,
    ) -> Prediction:
        """Predict the error bound that reaches ``target_ratio`` on ``data``.

        ``safety`` > 0 biases toward overshooting the ratio (quota-safe);
        see :meth:`ErrorBoundModel.predict_error_bound`. Passing a
        precomputed ``features`` vector (from :meth:`extract_features`)
        skips extraction entirely — the cache hook used by
        :class:`repro.serve.PredictionService`.
        """
        if features is None:
            arr = as_float_array(data)
            feats, feat_s = self._extract_features(arr)
        else:
            feats, feat_s = np.asarray(features, dtype=np.float64), 0.0
        with timed_span(
            "inference.predict", framework=self.name, target_ratio=float(target_ratio)
        ) as sp:
            eb, std = self.model.predict_error_bound_with_std(
                feats, float(target_ratio), safety=safety
            )
            sp.set(error_bound=eb)
        return Prediction(
            error_bound=eb,
            target_ratio=float(target_ratio),
            features=feats,
            feature_seconds=feat_s,
            inference_seconds=sp.elapsed,
            std=std,
        )

    def predict_error_bound_batch(
        self,
        data: np.ndarray,
        target_ratios,
        *,
        safety: float = 0.0,
        features: np.ndarray | None = None,
    ) -> BatchPrediction:
        """Predict error bounds for many targets on one input, in one pass.

        Features are extracted once (or taken from ``features``) and model
        inference runs on a stacked design matrix, so the cost is one
        extraction plus one vectorized model call. Error bounds are
        bitwise-identical to per-target :meth:`predict_error_bound` calls —
        see :meth:`ErrorBoundModel.predict_error_bound_batch`.
        """
        ratios = np.asarray(target_ratios, dtype=np.float64).ravel()
        if features is None:
            arr = as_float_array(data)
            feats, feat_s = self._extract_features(arr)
        else:
            feats, feat_s = np.asarray(features, dtype=np.float64), 0.0
        with timed_span(
            "inference.predict_batch", framework=self.name, n_targets=int(ratios.size)
        ) as sp:
            ebs, stds = self.model.predict_error_bound_batch_with_std(
                feats, ratios, safety=safety
            )
        preds = [
            Prediction(float(eb), float(t), feats, 0.0, 0.0, std=float(s))
            for eb, t, s in zip(ebs, ratios, stds)
        ]
        return BatchPrediction(
            predictions=preds, feature_seconds=feat_s, inference_seconds=sp.elapsed
        )

    def compress_to_ratio(
        self, data: np.ndarray, target_ratio: float, *, safety: float = 0.0
    ) -> tuple[CompressionResult, Prediction]:
        """End-to-end: predict the error bound, then actually compress."""
        pred = self.predict_error_bound(data, target_ratio, safety=safety)
        result = self._codec.compress(data, pred.error_bound)
        return result, pred

    # -- evaluation ------------------------------------------------------------------

    def evaluate_targets(
        self, data: np.ndarray, target_ratios, *, safety: float = 0.0
    ) -> EvaluationReport:
        """Requested-vs-achieved ratios; alpha per the paper's Eq. (1).

        ``safety`` applies to every per-target prediction, matching
        :meth:`predict_error_bound` (all inference entry points share one
        bias convention and parameter names). Features are extracted once
        and charged to the report, not to any single prediction.
        """
        targets = np.asarray(target_ratios, dtype=np.float64).ravel()
        arr = as_float_array(data)
        feats, feat_s = self._extract_features(arr)
        achieved = np.empty(targets.size)
        ebs = np.empty(targets.size)
        preds: list[Prediction] = []
        for i, t in enumerate(targets):
            with timed_span(
                "inference.predict", framework=self.name, target_ratio=float(t)
            ) as sp:
                eb = self.model.predict_error_bound(feats, float(t), safety=safety)
                sp.set(error_bound=eb)
            ebs[i] = eb
            achieved[i] = self._codec.compression_ratio(arr, eb)
            preds.append(Prediction(eb, float(t), feats, 0.0, sp.elapsed))
        return EvaluationReport(
            targets=targets,
            achieved=achieved,
            predicted_ebs=ebs,
            alpha=estimation_error(targets, achieved),
            predictions=preds,
            feature_seconds=feat_s,
        )
