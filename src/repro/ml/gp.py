"""Gaussian-process regression with a Matérn 5/2 kernel.

The surrogate model behind CAROL's Bayesian-optimization trainer. Inputs
live in the unit hypercube (the encoded hyper-parameter space), outputs are
standardized internally. Kernel hyper-parameters (lengthscale, signal and
noise variance) are selected by L-BFGS on the log marginal likelihood with
a couple of restarts — observation counts are small (tens), so the cubic
Cholesky cost is negligible.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import cho_factor, cho_solve
from scipy.optimize import minimize

_SQRT5 = np.sqrt(5.0)
_JITTER = 1e-10


def matern52(X1: np.ndarray, X2: np.ndarray, lengthscale: float) -> np.ndarray:
    """Matérn 5/2 correlation matrix between row sets ``X1`` and ``X2``."""
    d = np.sqrt(
        np.maximum(
            ((X1[:, None, :] - X2[None, :, :]) ** 2).sum(axis=2), 0.0
        )
    ) / lengthscale
    return (1.0 + _SQRT5 * d + 5.0 / 3.0 * d * d) * np.exp(-_SQRT5 * d)


class GaussianProcess:
    """Exact GP regressor; ``fit`` optimizes kernel hyper-parameters."""

    def __init__(
        self,
        lengthscale: float = 0.3,
        signal_var: float = 1.0,
        noise_var: float = 1e-4,
        optimize: bool = True,
        n_restarts: int = 1,
        random_state: int = 0,
    ) -> None:
        self.lengthscale = float(lengthscale)
        self.signal_var = float(signal_var)
        self.noise_var = float(noise_var)
        self.optimize = bool(optimize)
        self.n_restarts = int(n_restarts)
        self.random_state = random_state
        self._X: np.ndarray | None = None
        self._alpha: np.ndarray | None = None
        self._chol = None
        self._y_mean = 0.0
        self._y_std = 1.0

    # -- internals -----------------------------------------------------------

    def _nll(self, log_params: np.ndarray, X: np.ndarray, y: np.ndarray) -> float:
        ls, sv, nv = np.exp(log_params)
        K = sv * matern52(X, X, ls) + (nv + _JITTER) * np.eye(X.shape[0])
        try:
            chol = cho_factor(K, lower=True)
        except np.linalg.LinAlgError:
            return 1e25
        alpha = cho_solve(chol, y)
        logdet = 2.0 * np.log(np.diag(chol[0])).sum()
        return float(0.5 * y @ alpha + 0.5 * logdet)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GaussianProcess":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if X.ndim != 2 or X.shape[0] != y.size or X.shape[0] == 0:
            raise ValueError("X must be (n, d) matching non-empty y")
        self._y_mean = float(y.mean())
        self._y_std = float(y.std()) or 1.0
        yn = (y - self._y_mean) / self._y_std

        best = np.log([self.lengthscale, self.signal_var, self.noise_var])
        if self.optimize and X.shape[0] >= 3:
            rng = np.random.default_rng(self.random_state)
            starts = [best] + [
                np.log(
                    [
                        rng.uniform(0.05, 1.0),
                        rng.uniform(0.3, 3.0),
                        rng.uniform(1e-6, 1e-2),
                    ]
                )
                for _ in range(self.n_restarts)
            ]
            best_val = np.inf
            bounds = [(-4.0, 2.0), (-4.0, 4.0), (-16.0, 0.0)]
            for s in starts:
                res = minimize(
                    self._nll, s, args=(X, yn), method="L-BFGS-B", bounds=bounds
                )
                if res.fun < best_val:
                    best_val = res.fun
                    best = res.x
        self.lengthscale, self.signal_var, self.noise_var = np.exp(best)

        K = self.signal_var * matern52(X, X, self.lengthscale)
        K += (self.noise_var + _JITTER) * np.eye(X.shape[0])
        self._chol = cho_factor(K, lower=True)
        self._alpha = cho_solve(self._chol, yn)
        self._X = X
        return self

    def predict(self, X: np.ndarray, return_std: bool = False):
        if self._X is None:
            raise RuntimeError("GP is not fitted")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[None, :]
        Ks = self.signal_var * matern52(X, self._X, self.lengthscale)
        mean = Ks @ self._alpha * self._y_std + self._y_mean
        if not return_std:
            return mean
        v = cho_solve(self._chol, Ks.T)
        var = self.signal_var - (Ks * v.T).sum(axis=1)
        var = np.maximum(var, 1e-12)
        return mean, np.sqrt(var) * self._y_std
