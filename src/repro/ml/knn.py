"""k-nearest-neighbours regressor (alternative model, paper future work).

Simple but a strong baseline here: the error-bound prediction problem is
low-dimensional (five features + log target ratio) and the training rows
tile the feature x ratio plane densely, which suits local interpolation.
Features are standardized internally so the Euclidean metric is meaningful;
predictions optionally weight neighbours by inverse distance.
"""

from __future__ import annotations

import numpy as np


class KNeighborsRegressor:
    """Brute-force kNN with z-scored features."""

    def __init__(self, n_neighbors: int = 5, weights: str = "distance") -> None:
        if n_neighbors < 1:
            raise ValueError("n_neighbors must be >= 1")
        if weights not in ("uniform", "distance"):
            raise ValueError("weights must be 'uniform' or 'distance'")
        self.n_neighbors = int(n_neighbors)
        self.weights = weights
        self._X: np.ndarray | None = None
        self._y: np.ndarray | None = None
        self._mu: np.ndarray | None = None
        self._sigma: np.ndarray | None = None

    def get_params(self) -> dict:
        return {"n_neighbors": self.n_neighbors, "weights": self.weights}

    def fit(self, X: np.ndarray, y: np.ndarray) -> "KNeighborsRegressor":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if X.ndim != 2 or X.shape[0] != y.size or X.shape[0] == 0:
            raise ValueError("X must be (n, d) matching non-empty y")
        self._mu = X.mean(axis=0)
        self._sigma = X.std(axis=0)
        self._sigma[self._sigma == 0] = 1.0
        self._X = (X - self._mu) / self._sigma
        self._y = y
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._X is None:
            raise RuntimeError("model is not fitted")
        X = np.asarray(X, dtype=np.float64)
        single = X.ndim == 1
        if single:
            X = X[None, :]
        Q = (X - self._mu) / self._sigma
        # (q, n) squared distances, vectorized.
        d2 = ((Q[:, None, :] - self._X[None, :, :]) ** 2).sum(axis=2)
        k = min(self.n_neighbors, self._X.shape[0])
        idx = np.argpartition(d2, k - 1, axis=1)[:, :k]
        rows = np.arange(Q.shape[0])[:, None]
        if self.weights == "uniform":
            out = self._y[idx].mean(axis=1)
        else:
            w = 1.0 / np.sqrt(d2[rows, idx] + 1e-12)
            out = (self._y[idx] * w).sum(axis=1) / w.sum(axis=1)
        return out[0:1][0] if single else out

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        y = np.asarray(y, dtype=np.float64).ravel()
        pred = self.predict(X)
        ss_res = float(((y - pred) ** 2).sum())
        ss_tot = float(((y - y.mean()) ** 2).sum())
        return 1.0 - ss_res / ss_tot if ss_tot > 0 else 0.0
