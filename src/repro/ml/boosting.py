"""Gradient-boosted regression trees.

One of the "different machine learning models" the paper's conclusion
proposes exploring as future work. Standard least-squares boosting: each
stage fits a shallow CART tree to the current residuals and is added with a
learning rate. Shares the tree learner with the random forest, so the whole
model family stays NumPy-only.
"""

from __future__ import annotations

import numpy as np

from repro.ml.tree import DecisionTreeRegressor


class GradientBoostingRegressor:
    """L2 gradient boosting over shallow CART trees."""

    def __init__(
        self,
        n_estimators: int = 100,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        min_samples_leaf: int = 1,
        subsample: float = 1.0,
        random_state: int | None = None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError("learning_rate must be in (0, 1]")
        if not 0.0 < subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")
        self.n_estimators = int(n_estimators)
        self.learning_rate = float(learning_rate)
        self.max_depth = int(max_depth)
        self.min_samples_leaf = int(min_samples_leaf)
        self.subsample = float(subsample)
        self.random_state = random_state
        self.trees: list[DecisionTreeRegressor] = []
        self.base_value = 0.0

    def get_params(self) -> dict:
        return {
            "n_estimators": self.n_estimators,
            "learning_rate": self.learning_rate,
            "max_depth": self.max_depth,
            "min_samples_leaf": self.min_samples_leaf,
            "subsample": self.subsample,
        }

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostingRegressor":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if X.ndim != 2 or X.shape[0] != y.size or X.shape[0] == 0:
            raise ValueError("X must be (n, d) matching non-empty y")
        rng = np.random.default_rng(self.random_state)
        n = X.shape[0]
        self.base_value = float(y.mean())
        pred = np.full(n, self.base_value)
        self.trees = []
        for _ in range(self.n_estimators):
            residual = y - pred
            if self.subsample < 1.0:
                idx = rng.choice(n, size=max(int(n * self.subsample), 2), replace=False)
            else:
                idx = np.arange(n)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                random_state=rng.integers(0, 2**31),
            )
            tree.fit(X[idx], residual[idx])
            pred += self.learning_rate * tree.predict(X)
            self.trees.append(tree)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not self.trees:
            raise RuntimeError("model is not fitted")
        X = np.asarray(X, dtype=np.float64)
        single = X.ndim == 1
        if single:
            X = X[None, :]
        out = np.full(X.shape[0], self.base_value)
        for tree in self.trees:
            out += self.learning_rate * tree.predict(X)
        return out[0] if single else out

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        y = np.asarray(y, dtype=np.float64).ravel()
        pred = self.predict(X)
        ss_res = float(((y - pred) ** 2).sum())
        ss_tot = float(((y - y.mean()) ** 2).sum())
        return 1.0 - ss_res / ss_tot if ss_tot > 0 else 0.0

    def staged_score(self, X: np.ndarray, y: np.ndarray) -> np.ndarray:
        """R^2 after each boosting stage (for early-stopping studies)."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        pred = np.full(X.shape[0], self.base_value)
        ss_tot = float(((y - y.mean()) ** 2).sum()) or 1.0
        scores = np.empty(len(self.trees))
        for i, tree in enumerate(self.trees):
            pred += self.learning_rate * tree.predict(X)
            scores[i] = 1.0 - float(((y - pred) ** 2).sum()) / ss_tot
        return scores
