"""Bagging random-forest regressor (FXRZ's model class).

Hyper-parameters mirror scikit-learn's names because the paper specifies
its search space in those terms (Section 5.3): ``n_estimators``,
``max_features`` ("auto"/"sqrt"), ``max_depth``, ``min_samples_split``,
``min_samples_leaf``, ``bootstrap``.
"""

from __future__ import annotations

import numpy as np

from repro.ml.tree import DecisionTreeRegressor


class RandomForestRegressor:
    """Mean-aggregated ensemble of CART trees."""

    def __init__(
        self,
        n_estimators: int = 100,
        max_features: int | str | None = "auto",
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        bootstrap: bool = True,
        random_state: int | None = None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = int(n_estimators)
        self.max_features = max_features
        self.max_depth = max_depth
        self.min_samples_split = int(min_samples_split)
        self.min_samples_leaf = int(min_samples_leaf)
        self.bootstrap = bool(bootstrap)
        self.random_state = random_state
        self.trees: list[DecisionTreeRegressor] = []

    def get_params(self) -> dict:
        return {
            "n_estimators": self.n_estimators,
            "max_features": self.max_features,
            "max_depth": self.max_depth,
            "min_samples_split": self.min_samples_split,
            "min_samples_leaf": self.min_samples_leaf,
            "bootstrap": self.bootstrap,
        }

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        rng = np.random.default_rng(self.random_state)
        n = X.shape[0]
        self.trees = []
        for _ in range(self.n_estimators):
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                random_state=rng.integers(0, 2**31),
            )
            if self.bootstrap:
                idx = rng.integers(0, n, size=n)
                tree.fit(X[idx], y[idx])
            else:
                tree.fit(X, y)
            self.trees.append(tree)
        return self

    @property
    def has_spread(self) -> bool:
        """Whether the across-tree spread is a real uncertainty signal.

        With ``bootstrap=False`` and every feature considered at every
        split (``max_features`` None/"auto"), all trees solve the
        identical problem and agree exactly — a zero spread then means
        *degenerate ensemble*, not *confident ensemble*. Consumers of
        ``predict_with_std`` treat such a forest as exposing no spread
        at all (``nan``), the same as non-ensemble model kinds.
        """
        subsampled = self.max_features is not None and self.max_features != "auto"
        return self.bootstrap or subsampled

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not self.trees:
            raise RuntimeError("forest is not fitted")
        X = np.asarray(X, dtype=np.float64)
        single = X.ndim == 1
        if single:
            X = X[None, :]
        out = np.zeros(X.shape[0])
        for tree in self.trees:
            out += tree.predict(X)
        out /= len(self.trees)
        return out[0] if single else out

    def predict_std(self, X: np.ndarray) -> np.ndarray:
        """Across-tree standard deviation of the prediction.

        A cheap epistemic-uncertainty proxy: where the trees disagree, the
        training data underdetermines the answer. Used by the frameworks'
        ``safety`` option to bias error-bound predictions conservatively.
        """
        if not self.trees:
            raise RuntimeError("forest is not fitted")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[None, :]
        # Stack trees along the last (contiguous) axis so each row reduces
        # over the same contiguous layout no matter how many rows are in the
        # batch — a batched call is then bitwise-identical to row-at-a-time
        # calls, which the serving layer's predict_batch guarantees.
        preds = np.stack([tree.predict(X) for tree in self.trees], axis=-1)
        return preds.std(axis=-1)

    def predict_with_std(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Mean prediction and across-tree spread from ONE ensemble pass.

        Each tree is evaluated once; the mean accumulates per tree in the
        same order :meth:`predict` sums, and the spread reduces the same
        stacked layout :meth:`predict_std` builds — both outputs are
        bitwise-identical to the separate calls, at half the tree cost.
        """
        if not self.trees:
            raise RuntimeError("forest is not fitted")
        X = np.asarray(X, dtype=np.float64)
        single = X.ndim == 1
        if single:
            X = X[None, :]
        preds = np.stack([tree.predict(X) for tree in self.trees], axis=-1)
        mean = np.zeros(X.shape[0])
        for k in range(preds.shape[-1]):
            mean += preds[..., k]
        mean /= len(self.trees)
        std = preds.std(axis=-1)
        return (mean[0], std[0]) if single else (mean, std)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Coefficient of determination R^2 (higher is better)."""
        y = np.asarray(y, dtype=np.float64).ravel()
        pred = self.predict(X)
        ss_res = float(((y - pred) ** 2).sum())
        ss_tot = float(((y - y.mean()) ** 2).sum())
        return 1.0 - ss_res / ss_tot if ss_tot > 0 else 0.0

    def memory_footprint_bytes(self) -> int:
        """Approximate in-memory size of the fitted ensemble.

        Used by the Fig. 5a harness to model the paper's 96 GB memory wall
        for parallel grid-search training.
        """
        total = 0
        for tree in self.trees:
            total += tree.node_count * (8 * 6)  # six 8-byte arrays per node
        return total
