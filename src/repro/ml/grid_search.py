"""FXRZ's randomized grid search with k-fold cross-validation.

Samples a fixed number of unique configurations (the paper uses 10) from
the hyper-parameter space, scores each by k-fold cross-validated R^2, and
refits the winner on all data. Per-configuration fit times and model
memory footprints are recorded so the Fig. 5a harness can model the
paper's parallel-training memory wall.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.ml.models import make_model
from repro.ml.kfold import KFold, cross_val_score
from repro.ml.space import SearchSpace
from repro.obs import count, span


@dataclass
class SearchRecord:
    """One evaluated configuration."""

    params: dict
    score: float
    fit_seconds: float
    memory_bytes: int = 0


@dataclass
class SearchResult:
    best_params: dict
    best_score: float
    model: object
    records: list[SearchRecord] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def total_fit_seconds(self) -> float:
        return sum(r.fit_seconds for r in self.records)


class RandomizedGridSearch:
    """Randomized configuration sampling + CV scoring (FXRZ's trainer)."""

    def __init__(
        self,
        space: SearchSpace,
        n_iter: int = 10,
        cv: int = 5,
        random_state: int | None = 0,
        model_kind: str = "forest",
    ) -> None:
        self.space = space
        self.n_iter = int(n_iter)
        self.cv = int(cv)
        self.random_state = random_state
        self.model_kind = model_kind

    def _sample_unique(self, rng: np.random.Generator) -> list[dict]:
        seen: set[tuple] = set()
        out: list[dict] = []
        attempts = 0
        while len(out) < self.n_iter and attempts < 50 * self.n_iter:
            params = self.space.sample(rng)
            key = tuple(params[n] for n in self.space.names)
            attempts += 1
            if key not in seen:
                seen.add(key)
                out.append(params)
        return out

    def fit(self, X: np.ndarray, y: np.ndarray) -> SearchResult:
        rng = np.random.default_rng(self.random_state)
        start = time.perf_counter()
        records: list[SearchRecord] = []
        kfold = KFold(n_splits=self.cv, random_state=0)
        for i, params in enumerate(self._sample_unique(rng)):
            with span("training.iteration", method="grid", i=i) as sp:
                t0 = time.perf_counter()
                scores = cross_val_score(
                    lambda p=params: make_model(self.model_kind, random_state=0, **p),
                    X, y, cv=kfold,
                )
                fit_s = time.perf_counter() - t0
                sp.set(params=dict(params), score=float(scores.mean()))
            count("training.grid_evaluations")
            # Analytical footprint: ~2*n/min_samples_leaf nodes per tree,
            # six 8-byte arrays per node (avoids an extra probe fit).
            nodes_per_tree = max(2 * X.shape[0] // params.get("min_samples_leaf", 1), 3)
            mem = params.get("n_estimators", 1) * nodes_per_tree * 48
            records.append(
                SearchRecord(
                    params=params,
                    score=float(scores.mean()),
                    fit_seconds=fit_s,
                    memory_bytes=int(mem),
                )
            )
        best = max(records, key=lambda r: r.score)
        model = make_model(self.model_kind, random_state=0, **best.params).fit(X, y)
        return SearchResult(
            best_params=best.params,
            best_score=best.score,
            model=model,
            records=records,
            elapsed=time.perf_counter() - start,
        )
