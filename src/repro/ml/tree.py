"""CART regression tree with vectorized split search.

The split search evaluates every candidate threshold of every candidate
feature of a node in one batch of array operations (argsort + prefix sums),
so fitting cost is a few NumPy kernels per node rather than per-threshold
Python loops. Prediction walks all query rows through the tree level by
level, again vectorized.
"""

from __future__ import annotations

import numpy as np

_LEAF = -1


class DecisionTreeRegressor:
    """Variance-reduction regression tree (the forest's base learner)."""

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | str | None = None,
        random_state: int | np.random.Generator | None = None,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_split = int(min_samples_split)
        self.min_samples_leaf = int(min_samples_leaf)
        self.max_features = max_features
        self.random_state = random_state
        # flat node arrays, filled by fit()
        self.feature: np.ndarray | None = None
        self.threshold: np.ndarray | None = None
        self.left: np.ndarray | None = None
        self.right: np.ndarray | None = None
        self.value: np.ndarray | None = None
        self.n_samples: np.ndarray | None = None
        self.mse: np.ndarray | None = None

    # -- fitting ------------------------------------------------------------

    def _n_candidate_features(self, n_features: int) -> int:
        mf = self.max_features
        if mf is None or mf == "auto":
            return n_features
        if mf == "sqrt":
            return max(int(np.sqrt(n_features)), 1)
        return max(min(int(mf), n_features), 1)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if X.ndim != 2 or X.shape[0] != y.size:
            raise ValueError("X must be (n_samples, n_features) matching y")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        rng = (
            self.random_state
            if isinstance(self.random_state, np.random.Generator)
            else np.random.default_rng(self.random_state)
        )
        n, f = X.shape
        k = self._n_candidate_features(f)
        max_depth = self.max_depth if self.max_depth is not None else np.inf

        feature, threshold, left, right, value, counts, mses = [], [], [], [], [], [], []

        def new_node() -> int:
            for lst, fill in (
                (feature, _LEAF),
                (threshold, 0.0),
                (left, _LEAF),
                (right, _LEAF),
                (value, 0.0),
                (counts, 0),
                (mses, 0.0),
            ):
                lst.append(fill)
            return len(feature) - 1

        root = new_node()
        stack: list[tuple[int, np.ndarray, int]] = [(root, np.arange(n), 0)]
        msl = self.min_samples_leaf
        while stack:
            node, idx, depth = stack.pop()
            yn = y[idx]
            m = idx.size
            value[node] = float(yn.mean())
            counts[node] = m
            mses[node] = float(yn.var())
            if (
                m < self.min_samples_split
                or m < 2 * msl
                or depth >= max_depth
                or mses[node] <= 1e-30
            ):
                continue
            feat_ids = (
                np.arange(f) if k >= f else rng.choice(f, size=k, replace=False)
            )
            split = self._best_split(X, yn, idx, feat_ids, msl)
            if split is None:
                continue
            fid, thr, left_mask = split
            feature[node] = int(fid)
            threshold[node] = float(thr)
            l_id, r_id = new_node(), new_node()
            left[node] = l_id
            right[node] = r_id
            stack.append((l_id, idx[left_mask], depth + 1))
            stack.append((r_id, idx[~left_mask], depth + 1))

        self.feature = np.array(feature, dtype=np.int64)
        self.threshold = np.array(threshold)
        self.left = np.array(left, dtype=np.int64)
        self.right = np.array(right, dtype=np.int64)
        self.value = np.array(value)
        self.n_samples = np.array(counts, dtype=np.int64)
        self.mse = np.array(mses)
        return self

    @staticmethod
    def _best_split(
        X: np.ndarray, yn: np.ndarray, idx: np.ndarray, feat_ids: np.ndarray, msl: int
    ):
        """Minimize child SSE over all (feature, threshold) candidates."""
        Xn = X[np.ix_(idx, feat_ids)]  # (m, k)
        m = Xn.shape[0]
        order = np.argsort(Xn, axis=0, kind="stable")
        Xs = np.take_along_axis(Xn, order, axis=0)
        ys = yn[order]  # (m, k): y sorted per feature
        csum = np.cumsum(ys, axis=0)
        csq = np.cumsum(ys * ys, axis=0)
        total_sum = csum[-1]
        total_sq = csq[-1]

        sizes = np.arange(1, m, dtype=np.float64)[:, None]  # left sizes 1..m-1
        left_sum = csum[:-1]
        left_sq = csq[:-1]
        right_sum = total_sum[None, :] - left_sum
        right_sq = total_sq[None, :] - left_sq
        left_sse = left_sq - left_sum**2 / sizes
        right_sse = right_sq - right_sum**2 / (m - sizes)
        score = left_sse + right_sse

        valid = Xs[1:] != Xs[:-1]
        if msl > 1:
            pos = np.arange(1, m)[:, None]
            valid &= (pos >= msl) & (m - pos >= msl)
        if not valid.any():
            return None
        score = np.where(valid, score, np.inf)
        flat = int(np.argmin(score))
        row, col = np.unravel_index(flat, score.shape)
        thr = 0.5 * (Xs[row, col] + Xs[row + 1, col])
        fid = int(feat_ids[col])
        left_mask = X[idx, fid] <= thr
        # Guard against degenerate masks from midpoint rounding.
        ls = int(left_mask.sum())
        if ls == 0 or ls == m:
            left_mask = X[idx, fid] <= Xs[row, col]
            ls = int(left_mask.sum())
            if ls == 0 or ls == m:
                return None
            thr = Xs[row, col]
        return fid, thr, left_mask

    # -- prediction ----------------------------------------------------------

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.feature is None:
            raise RuntimeError("tree is not fitted")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[None, :]
        node = np.zeros(X.shape[0], dtype=np.int64)
        while True:
            internal = self.feature[node] != _LEAF
            if not internal.any():
                break
            rows = np.flatnonzero(internal)
            cur = node[rows]
            go_left = X[rows, self.feature[cur]] <= self.threshold[cur]
            node[rows] = np.where(go_left, self.left[cur], self.right[cur])
        return self.value[node]

    # -- introspection ---------------------------------------------------------

    @property
    def node_count(self) -> int:
        return 0 if self.feature is None else self.feature.size

    @property
    def depth(self) -> int:
        if self.feature is None:
            return 0
        depths = np.zeros(self.node_count, dtype=np.int64)
        best = 0
        for i in range(self.node_count):
            if self.feature[i] != _LEAF:
                depths[self.left[i]] = depths[i] + 1
                depths[self.right[i]] = depths[i] + 1
                best = max(best, depths[i] + 1)
        return best

    def export_text(self, feature_names: list[str] | None = None, max_nodes: int = 64) -> str:
        """Render the tree like the paper's Figure 4 (feature, mse, samples, value)."""
        if self.feature is None:
            return "<unfitted tree>"
        n_features = int(self.feature.max()) + 1 if self.feature.max() >= 0 else 1
        names = feature_names or [f"x{i}" for i in range(n_features)]
        lines: list[str] = []

        def walk(node: int, indent: str) -> None:
            if len(lines) >= max_nodes:
                return
            if self.feature[node] == _LEAF:
                lines.append(
                    f"{indent}leaf: value={self.value[node]:.4g} "
                    f"(mse={self.mse[node]:.3g}, samples={self.n_samples[node]})"
                )
                return
            lines.append(
                f"{indent}{names[self.feature[node]]} <= {self.threshold[node]:.4g} "
                f"(mse={self.mse[node]:.3g}, samples={self.n_samples[node]}, "
                f"value={self.value[node]:.4g})"
            )
            walk(int(self.left[node]), indent + "  ")
            walk(int(self.right[node]), indent + "  ")

        walk(0, "")
        return "\n".join(lines)
