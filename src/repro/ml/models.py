"""Model registry: the forest plus the future-work alternatives.

The paper's conclusion proposes "utilizing different machine learning
models"; this registry lets the frameworks swap the regressor while keeping
the same trainer (grid search or Bayesian optimization), since every model
exposes ``fit`` / ``predict`` / ``score`` / ``get_params`` and has a
matching hyper-parameter search space.
"""

from __future__ import annotations

from typing import Callable

from repro.ml.boosting import GradientBoostingRegressor
from repro.ml.forest import RandomForestRegressor
from repro.ml.knn import KNeighborsRegressor
from repro.ml.space import Choice, IntRange, SCALED_SPACE, SearchSpace

MODEL_KINDS = ("forest", "gbt", "knn")

_FACTORIES: dict[str, Callable] = {
    "forest": RandomForestRegressor,
    "gbt": GradientBoostingRegressor,
    "knn": KNeighborsRegressor,
}

GBT_SPACE = SearchSpace(
    {
        "n_estimators": IntRange(20, 200, 20),
        "learning_rate": Choice((0.03, 0.1, 0.3)),
        "max_depth": IntRange(2, 6),
        "min_samples_leaf": Choice((1, 2, 4)),
        "subsample": Choice((0.6, 0.8, 1.0)),
    }
)

KNN_SPACE = SearchSpace(
    {
        "n_neighbors": IntRange(1, 25),
        "weights": Choice(("uniform", "distance")),
    }
)

_SPACES: dict[str, SearchSpace] = {
    "forest": SCALED_SPACE,
    "gbt": GBT_SPACE,
    "knn": KNN_SPACE,
}


def make_model(kind: str, **params):
    """Instantiate a regressor by kind name."""
    if kind not in _FACTORIES:
        raise KeyError(f"unknown model kind {kind!r}; available: {MODEL_KINDS}")
    if kind == "forest":
        # random_state is a constructor arg for the stochastic models
        return _FACTORIES[kind](**params)
    if kind == "gbt":
        return _FACTORIES[kind](**params)
    return _FACTORIES[kind](**{k: v for k, v in params.items() if k != "random_state"})


def default_space(kind: str) -> SearchSpace:
    """Default hyper-parameter space for a model kind."""
    if kind not in _SPACES:
        raise KeyError(f"unknown model kind {kind!r}; available: {MODEL_KINDS}")
    return _SPACES[kind]
