"""From-scratch ML substrate.

FXRZ's model stack (random forest + randomized grid search with k-fold
cross-validation) and CAROL's replacement trainer (Gaussian-process Bayesian
optimization with warm-start checkpointing), implemented on NumPy only:

- :mod:`repro.ml.tree` — CART regression trees with vectorized split search;
- :mod:`repro.ml.forest` — bagging random-forest regressor;
- :mod:`repro.ml.kfold` — k-fold cross-validation;
- :mod:`repro.ml.space` — the paper's hyper-parameter space (396 000
  configurations) and a scaled variant for laptop-scale benchmarks;
- :mod:`repro.ml.grid_search` — FXRZ's randomized grid search;
- :mod:`repro.ml.gp` — Gaussian-process regression (Matérn 5/2);
- :mod:`repro.ml.bayesopt` — expected-improvement Bayesian optimization
  with checkpointable observations.
"""

from repro.ml.bayesopt import BayesianOptimizer
from repro.ml.forest import RandomForestRegressor
from repro.ml.gp import GaussianProcess
from repro.ml.grid_search import RandomizedGridSearch
from repro.ml.kfold import KFold, cross_val_score
from repro.ml.space import PAPER_SPACE, SCALED_SPACE, SearchSpace
from repro.ml.tree import DecisionTreeRegressor

__all__ = [
    "DecisionTreeRegressor",
    "RandomForestRegressor",
    "KFold",
    "cross_val_score",
    "SearchSpace",
    "PAPER_SPACE",
    "SCALED_SPACE",
    "RandomizedGridSearch",
    "GaussianProcess",
    "BayesianOptimizer",
]
