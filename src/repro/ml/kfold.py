"""k-fold cross-validation (FXRZ's model-selection backbone)."""

from __future__ import annotations

from typing import Callable

import numpy as np


class KFold:
    """Shuffled k-fold splitter with deterministic seeding."""

    def __init__(
        self, n_splits: int = 5, shuffle: bool = True, random_state: int | None = 0
    ) -> None:
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = int(n_splits)
        self.shuffle = bool(shuffle)
        self.random_state = random_state

    def split(self, n_samples: int):
        """Yield ``(train_idx, test_idx)`` pairs."""
        if n_samples < self.n_splits:
            raise ValueError(
                f"cannot split {n_samples} samples into {self.n_splits} folds"
            )
        idx = np.arange(n_samples)
        if self.shuffle:
            np.random.default_rng(self.random_state).shuffle(idx)
        folds = np.array_split(idx, self.n_splits)
        for i in range(self.n_splits):
            test = folds[i]
            train = np.concatenate([folds[j] for j in range(self.n_splits) if j != i])
            yield train, test


def cross_val_score(
    model_factory: Callable[[], object],
    X: np.ndarray,
    y: np.ndarray,
    cv: KFold | int = 5,
) -> np.ndarray:
    """Per-fold R^2 scores for models built by ``model_factory``."""
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64).ravel()
    splitter = cv if isinstance(cv, KFold) else KFold(n_splits=int(cv))
    scores = []
    for train, test in splitter.split(X.shape[0]):
        model = model_factory()
        model.fit(X[train], y[train])
        scores.append(model.score(X[test], y[test]))
    return np.array(scores)
