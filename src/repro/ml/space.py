"""Hyper-parameter search spaces (paper Section 5.3).

The paper searches six random-forest hyper-parameters; ``PAPER_SPACE`` is
that space verbatim (~4x10^5 unique configurations). ``SCALED_SPACE`` keeps
the same six dimensions but shrinks the expensive ones (``n_estimators``,
``max_depth``) so the full experiment suite runs in minutes on one CPU core
— the scaling is recorded in EXPERIMENTS.md.

Parameters encode to the unit hypercube for the Gaussian-process optimizer:
integer ranges map affinely, categoricals map to evenly spaced bins.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class IntRange:
    """Integer parameter in [lo, hi] with a step (inclusive endpoints)."""

    lo: int
    hi: int
    step: int = 1

    def __post_init__(self) -> None:
        if self.hi < self.lo or self.step < 1:
            raise ValueError("invalid IntRange")

    @property
    def n_values(self) -> int:
        return (self.hi - self.lo) // self.step + 1

    def sample(self, rng: np.random.Generator) -> int:
        return int(self.lo + self.step * rng.integers(0, self.n_values))

    def encode(self, value: int) -> float:
        if self.n_values == 1:
            return 0.5
        return ((int(value) - self.lo) / self.step) / (self.n_values - 1)

    def decode(self, u: float) -> int:
        k = int(round(float(np.clip(u, 0.0, 1.0)) * (self.n_values - 1)))
        return self.lo + self.step * k


@dataclass(frozen=True)
class Choice:
    """Categorical parameter over an ordered tuple of values."""

    values: tuple

    @property
    def n_values(self) -> int:
        return len(self.values)

    def sample(self, rng: np.random.Generator):
        return self.values[int(rng.integers(0, len(self.values)))]

    def encode(self, value) -> float:
        idx = self.values.index(value)
        if len(self.values) == 1:
            return 0.5
        return idx / (len(self.values) - 1)

    def decode(self, u: float):
        idx = int(round(float(np.clip(u, 0.0, 1.0)) * (len(self.values) - 1)))
        return self.values[idx]


class SearchSpace:
    """Named collection of parameter specs with unit-cube encoding."""

    def __init__(self, specs: dict[str, IntRange | Choice]) -> None:
        if not specs:
            raise ValueError("search space must have at least one parameter")
        self.specs = dict(specs)
        self.names = list(specs)

    @property
    def dim(self) -> int:
        return len(self.specs)

    def size(self) -> int:
        """Number of unique configurations (the paper reports 396 000)."""
        total = 1
        for spec in self.specs.values():
            total *= spec.n_values
        return total

    def sample(self, rng: np.random.Generator) -> dict:
        return {name: spec.sample(rng) for name, spec in self.specs.items()}

    def encode(self, params: dict) -> np.ndarray:
        return np.array([self.specs[n].encode(params[n]) for n in self.names])

    def decode(self, vec: np.ndarray) -> dict:
        return {n: self.specs[n].decode(v) for n, v in zip(self.names, vec)}

    def grid_axes(self) -> dict[str, list]:
        """All values per parameter (for exhaustive/grid enumeration)."""
        out: dict[str, list] = {}
        for name, spec in self.specs.items():
            if isinstance(spec, Choice):
                out[name] = list(spec.values)
            else:
                out[name] = list(range(spec.lo, spec.hi + 1, spec.step))
        return out


def _forest_space(n_estimators: IntRange, max_depth: IntRange) -> SearchSpace:
    return SearchSpace(
        {
            "n_estimators": n_estimators,
            "max_features": Choice(("auto", "sqrt")),
            "max_depth": max_depth,
            "min_samples_split": Choice((2, 5, 10)),
            "min_samples_leaf": Choice((1, 2, 4)),
            "bootstrap": Choice((True, False)),
        }
    )


#: The paper's space: n_estimators [90:1200], max_depth [10:110]; ~4.4e5
#: unique configurations (the paper quotes 396 000 for the same six axes).
PAPER_SPACE = _forest_space(IntRange(90, 1200, 1), IntRange(10, 110, 10))

#: Laptop-scale variant used by the default benchmark configuration.
SCALED_SPACE = _forest_space(IntRange(10, 80, 5), IntRange(4, 16, 2))
