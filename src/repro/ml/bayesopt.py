"""Bayesian optimization over the hyper-parameter space (Section 5.3).

CAROL replaces FXRZ's randomized grid search with GP-based Bayesian
optimization: after an initial random design, each iteration fits a GP to
the observed (configuration, score) pairs and proposes the configuration
maximizing *expected improvement* over a candidate pool (exploration +
local perturbations of the incumbent = exploitation).

The optimizer's full state is its observation list, which makes
*checkpointing* trivial: ``checkpoint()`` / ``from_checkpoint()`` carry the
observations into a later training session, so model refreshes on new data
start warm instead of from scratch — the incremental-refinement behaviour
of Fig. 5a.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np
from scipy.stats import norm

from repro.ml.gp import GaussianProcess
from repro.ml.space import SearchSpace
from repro.obs import count, span


@dataclass
class BOIteration:
    """One objective evaluation."""

    params: dict
    score: float
    seconds: float
    kind: str  # "initial" | "warm" | "bo"


@dataclass
class BOResult:
    best_params: dict
    best_score: float
    history: list[BOIteration] = field(default_factory=list)
    elapsed: float = 0.0

    def trajectory(self, name: str) -> list:
        """Per-iteration values of one hyper-parameter (Fig. 5b series)."""
        return [it.params[name] for it in self.history]


class BayesianOptimizer:
    """Expected-improvement BO over an encoded :class:`SearchSpace`."""

    def __init__(
        self,
        space: SearchSpace,
        n_initial: int = 5,
        n_candidates: int = 256,
        random_state: int | None = 0,
        observations: list[tuple[dict, float]] | None = None,
    ) -> None:
        self.space = space
        self.n_initial = int(n_initial)
        self.n_candidates = int(n_candidates)
        self._rng = np.random.default_rng(random_state)
        # Observations carried in from a checkpoint count as "warm" history.
        self._X: list[np.ndarray] = []
        self._y: list[float] = []
        self._warm = 0
        if observations:
            for params, score in observations:
                self._X.append(self.space.encode(params))
                self._y.append(float(score))
            self._warm = len(observations)

    # -- checkpointing -------------------------------------------------------

    def checkpoint(self) -> list[tuple[dict, float]]:
        """Serializable observation list (params dict, score)."""
        return [
            (self.space.decode(x), y) for x, y in zip(self._X, self._y)
        ]

    @classmethod
    def from_checkpoint(
        cls, space: SearchSpace, state: list[tuple[dict, float]], **kwargs
    ) -> "BayesianOptimizer":
        return cls(space, observations=state, **kwargs)

    # -- ask/tell --------------------------------------------------------------

    @property
    def n_observations(self) -> int:
        return len(self._y)

    def suggest(self) -> dict:
        """Next configuration to evaluate."""
        fresh = self.n_observations - self._warm
        if self.n_observations < max(self.n_initial, 2) and fresh < self.n_initial:
            if self._warm == 0 or fresh < max(self.n_initial - self._warm, 1):
                return self.space.sample(self._rng)
        return self._suggest_ei()

    def _suggest_ei(self) -> dict:
        X = np.vstack(self._X)
        y = np.array(self._y)
        gp = GaussianProcess(random_state=0).fit(X, y)
        best = y.max()

        d = self.space.dim
        cand = self._rng.random((self.n_candidates, d))
        # Exploitation: jitter around the incumbent.
        incumbent = X[int(np.argmax(y))]
        local = np.clip(
            incumbent + 0.08 * self._rng.standard_normal((self.n_candidates // 4, d)),
            0.0,
            1.0,
        )
        cand = np.vstack((cand, local))
        mean, std = gp.predict(cand, return_std=True)
        z = (mean - best) / std
        ei = (mean - best) * norm.cdf(z) + std * norm.pdf(z)
        return self.space.decode(cand[int(np.argmax(ei))])

    def observe(self, params: dict, score: float) -> None:
        self._X.append(self.space.encode(params))
        self._y.append(float(score))

    # -- driver ------------------------------------------------------------------

    def run(self, objective: Callable[[dict], float], n_iter: int = 10) -> BOResult:
        """Evaluate ``objective`` (higher = better) for ``n_iter`` iterations."""
        start = time.perf_counter()
        history: list[BOIteration] = []
        for i in range(n_iter):
            fresh = self.n_observations - self._warm
            kind = "initial" if (self._warm == 0 and fresh < self.n_initial) else "bo"
            if self._warm and i == 0:
                kind = "warm"
            with span("training.iteration", method="bayesopt", i=i, kind=kind) as sp:
                params = self.suggest()
                t0 = time.perf_counter()
                score = float(objective(params))
                sp.set(params=dict(params), score=score)
            count("training.bo_iterations")
            history.append(
                BOIteration(params=params, score=score, seconds=time.perf_counter() - t0, kind=kind)
            )
            self.observe(params, score)
        y = np.array(self._y)
        best_idx = int(np.argmax(y))
        best_params = self.space.decode(self._X[best_idx])
        return BOResult(
            best_params=best_params,
            best_score=float(y[best_idx]),
            history=history,
            elapsed=time.perf_counter() - start,
        )
