"""Workload topologies for driving the gateway: who sends what, when.

Modeled on the muBench-style topology/scale studies: a benchmark run is
a *workload model* (how load is offered) replayed against the gateway,
and the two canonical models bracket real traffic:

- **open loop** (:class:`OpenLoopPoisson`) — requests arrive on a
  Poisson process at a fixed *offered rate*, regardless of whether
  earlier requests have finished. This is "millions of independent
  users": arrivals don't slow down when the service does, so offered
  load can exceed capacity and the admission controller has to shed —
  the topology that finds the saturation point.
- **closed loop** (:class:`ClosedLoopClients`) — ``n_clients`` sessions
  each issue a request, await the response, think, repeat. Load is
  self-limiting (a slow service slows its own clients), so this
  topology measures latency under a controlled concurrency level.

Both are fully seeded: arrival gaps, field choices, and ratio choices
come from one :class:`numpy.random.Generator`, so the same spec replays
the identical request sequence — which is what lets ``load-bench``
digest-compare gateway responses against direct service calls.

The drivers (:func:`drive_open_loop` / :func:`drive_closed_loop`) run
inside an event loop against a started :class:`~repro.load.gateway.Gateway`
and return a :class:`Measurement`: per-request latencies (in submit
order), the error bounds for the determinism gate, and rejection
counts.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

import numpy as np

from repro.load.gateway import Gateway, Overloaded

#: Default menu of target ratios a synthetic requester picks from.
DEFAULT_RATIOS = (2.0, 4.0, 8.0, 12.0, 16.0, 24.0, 32.0)


@dataclass(frozen=True)
class WorkloadRequest:
    """One scripted request: fire ``gap_s`` after the previous event,
    asking for ``target_ratio`` on field ``field`` of the pool."""

    gap_s: float
    field: int
    target_ratio: float


@dataclass(frozen=True, kw_only=True)
class OpenLoopPoisson:
    """Open-loop topology: Poisson arrivals at ``rate`` requests/second.

    ``schedule()`` materializes the seeded arrival script; the offered
    rate is exact in expectation (exponential inter-arrival gaps with
    mean ``1/rate``).
    """

    rate: float
    n_requests: int
    n_fields: int
    ratios: tuple[float, ...] = DEFAULT_RATIOS
    seed: int = 0

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError("rate must be > 0")
        if self.n_requests < 1 or self.n_fields < 1:
            raise ValueError("n_requests and n_fields must be >= 1")

    @property
    def name(self) -> str:
        return f"open-poisson@{self.rate:g}rps"

    def schedule(self) -> list[WorkloadRequest]:
        rng = np.random.default_rng(self.seed)
        gaps = rng.exponential(1.0 / self.rate, size=self.n_requests)
        fields = rng.integers(self.n_fields, size=self.n_requests)
        ratios = rng.choice(np.asarray(self.ratios, dtype=np.float64),
                            size=self.n_requests)
        return [
            WorkloadRequest(gap_s=float(g), field=int(f), target_ratio=float(r))
            for g, f, r in zip(gaps, fields, ratios)
        ]


@dataclass(frozen=True, kw_only=True)
class ClosedLoopClients:
    """Closed-loop topology: ``n_clients`` sequential request loops.

    ``schedule()`` returns one script per client; a client's ``gap_s``
    is its think time *after* the previous response (exponential with
    mean ``think_ms``; 0 disables thinking for a tight loop).
    """

    n_clients: int
    requests_per_client: int
    n_fields: int
    think_ms: float = 0.0
    ratios: tuple[float, ...] = DEFAULT_RATIOS
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_clients < 1 or self.requests_per_client < 1 or self.n_fields < 1:
            raise ValueError(
                "n_clients, requests_per_client and n_fields must be >= 1"
            )
        if self.think_ms < 0:
            raise ValueError("think_ms must be >= 0")

    @property
    def name(self) -> str:
        return f"closed-{self.n_clients}clients"

    def schedule(self) -> list[list[WorkloadRequest]]:
        rng = np.random.default_rng(self.seed)
        scripts = []
        for _ in range(self.n_clients):
            n = self.requests_per_client
            gaps = (
                rng.exponential(self.think_ms / 1000.0, size=n)
                if self.think_ms > 0
                else np.zeros(n)
            )
            fields = rng.integers(self.n_fields, size=n)
            ratios = rng.choice(np.asarray(self.ratios, dtype=np.float64), size=n)
            scripts.append([
                WorkloadRequest(gap_s=float(g), field=int(f), target_ratio=float(r))
                for g, f, r in zip(gaps, fields, ratios)
            ])
        return scripts


@dataclass
class Measurement:
    """What one driven workload observed, in deterministic request order.

    ``latencies_s``/``error_bounds`` cover *completed* requests only;
    ``outcomes`` has one entry per scripted request (``"ok"`` /
    ``"rejected"``) so the determinism gate can line responses up with
    the direct-call reference even when some requests were shed.
    """

    outcomes: list[str] = field(default_factory=list)
    latencies_s: list[float] = field(default_factory=list)
    error_bounds: list[float | None] = field(default_factory=list)
    wall_s: float = 0.0

    @property
    def completed(self) -> int:
        return sum(1 for o in self.outcomes if o == "ok")

    @property
    def rejected(self) -> int:
        return sum(1 for o in self.outcomes if o == "rejected")

    @property
    def throughput_rps(self) -> float:
        return self.completed / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def rejection_rate(self) -> float:
        total = len(self.outcomes)
        return self.rejected / total if total else 0.0

    def percentile_ms(self, q: float) -> float:
        if not self.latencies_s:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies_s), q) * 1e3)


async def drive_open_loop(
    gateway: Gateway, datas: list, schedule: list[WorkloadRequest]
) -> Measurement:
    """Fire the script's arrivals at their scheduled times, never waiting
    for responses (open loop); collect results in script order."""
    loop = asyncio.get_running_loop()
    t0 = loop.time()
    arrivals = np.cumsum([req.gap_s for req in schedule])

    async def one(req: WorkloadRequest, at: float):
        delay = (t0 + at) - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        start = loop.time()
        try:
            pred = await gateway.submit(datas[req.field], req.target_ratio)
        except Overloaded:
            return ("rejected", 0.0, None)
        return ("ok", loop.time() - start, float(pred.error_bound))

    outcomes = await asyncio.gather(
        *(one(req, at) for req, at in zip(schedule, arrivals))
    )
    measurement = Measurement(wall_s=loop.time() - t0)
    for status, latency, eb in outcomes:
        measurement.outcomes.append(status)
        if status == "ok":
            measurement.latencies_s.append(latency)
        measurement.error_bounds.append(eb)
    return measurement


async def drive_closed_loop(
    gateway: Gateway, datas: list, scripts: list[list[WorkloadRequest]]
) -> Measurement:
    """Run one sequential submit→await→think loop per client; collect
    results client-major in script order."""
    loop = asyncio.get_running_loop()
    t0 = loop.time()

    async def client(script: list[WorkloadRequest]):
        out = []
        for req in script:
            if req.gap_s > 0:
                await asyncio.sleep(req.gap_s)
            start = loop.time()
            try:
                pred = await gateway.submit(datas[req.field], req.target_ratio)
            except Overloaded:
                out.append(("rejected", 0.0, None))
                continue
            out.append(("ok", loop.time() - start, float(pred.error_bound)))
        return out

    per_client = await asyncio.gather(*(client(s) for s in scripts))
    measurement = Measurement(wall_s=loop.time() - t0)
    for results in per_client:
        for status, latency, eb in results:
            measurement.outcomes.append(status)
            if status == "ok":
                measurement.latencies_s.append(latency)
            measurement.error_bounds.append(eb)
    return measurement
