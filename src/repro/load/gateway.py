"""Async serving gateway: admission control + request coalescing.

:class:`Gateway` is the front door of the serving stack — an asyncio
layer over :class:`~repro.serve.service.PredictionService` that turns a
stream of *single* predict requests into the *batched* calls the
service is fastest at, while refusing to melt under overload:

- **admission control** — at most ``max_pending`` requests may be
  queued or in flight; a request arriving over that cap is rejected
  *immediately* with a typed :class:`Overloaded` error (never queued
  forever), so latency for admitted requests stays bounded and memory
  cannot grow without limit;
- **request coalescing** — admitted requests accumulate in a queue that
  a single batcher task drains into
  :meth:`~repro.serve.service.PredictionService.predict_batch` calls,
  flushing on whichever comes first: ``max_batch`` requests queued, or
  ``max_wait_ms`` elapsed since the oldest queued request;
- **determinism** — ``predict_batch`` is bitwise-identical to
  sequential ``predict`` (the PR-2 contract), so every gateway response
  is bitwise-identical to a direct ``service.predict(data, ratio)``
  call *regardless* of how requests happened to coalesce. The
  ``load-bench`` CLI gates on exactly this.

Batches execute on a dedicated single-thread executor, so the event
loop keeps accepting (and rejecting) requests while the service is busy
— which is what makes the queue build up and coalescing actually
happen under load.

The gateway keeps always-on counters (:meth:`Gateway.stats` returns a
frozen :class:`GatewayStats`) and mirrors queue depth / rejections /
batch spans into :mod:`repro.obs` when tracing is enabled
(``load.gateway.queue_depth`` / ``.queue_depth_max`` gauges,
``load.gateway.requests`` / ``.rejections`` counters,
``load.gateway.batch`` spans tagged with their flush reason).
"""

from __future__ import annotations

import asyncio
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, fields as dc_fields

from repro.obs import count, observe, set_gauge, set_gauge_max, timed_span


class Overloaded(RuntimeError):
    """Request rejected by admission control: the pending queue is full.

    Raised *synchronously* by :meth:`Gateway.submit` — an over-cap
    request is never parked, so the caller can shed load (retry later,
    fail the request upstream) the moment the gateway saturates.
    """

    def __init__(self, pending: int, max_pending: int) -> None:
        super().__init__(
            f"gateway overloaded: {pending} requests pending (cap {max_pending})"
        )
        self.pending = pending
        self.max_pending = max_pending


class GatewayClosed(RuntimeError):
    """submit() after close(): the gateway no longer accepts requests."""


@dataclass(frozen=True, kw_only=True)
class GatewayOptions:
    """Frozen, hashable gateway configuration (counterpart of
    :class:`repro.serve.ServiceOptions` for the admission layer).

    ``max_batch`` / ``max_wait_ms`` tune the coalescing window — a
    queued batch flushes when either trips. ``max_pending`` is the
    admission cap over queued **plus** in-flight requests. ``safety``
    is the prediction bias applied uniformly to every request (one
    batch has one safety, so it is gateway-level configuration).
    """

    max_batch: int = 16
    max_wait_ms: float = 2.0
    max_pending: int = 256
    safety: float = 0.0

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        if self.max_pending < 1:
            raise ValueError("max_pending must be >= 1")

    @classmethod
    def from_gateway(cls, gateway: "Gateway") -> "GatewayOptions":
        """Recover the options a live gateway was built with."""
        return gateway.options

    def to_kwargs(self) -> dict:
        """The constructor kwargs that rebuild these options
        (``GatewayOptions(**opts.to_kwargs())`` round-trips)."""
        return {f.name: getattr(self, f.name) for f in dc_fields(self)}

    def build(self, service) -> "Gateway":
        """Construct a :class:`Gateway` over a prediction service."""
        return Gateway(service, options=self)


@dataclass(frozen=True)
class GatewayStats:
    """Typed, immutable gateway counters (always on, like
    :class:`~repro.serve.service.ServiceStats`).

    ``submitted = accepted + rejected``; ``accepted`` eventually becomes
    ``completed + failed`` once the queue drains. ``flushes_full`` /
    ``flushes_timer`` / ``flushes_drain`` split batches by what
    triggered them (cap reached, oldest request timed out, close()
    drain); their sum is ``batches``.
    """

    submitted: int
    accepted: int
    rejected: int
    completed: int
    failed: int
    batches: int
    flushes_full: int
    flushes_timer: int
    flushes_drain: int
    max_queue_depth: int

    @property
    def rejection_rate(self) -> float:
        return self.rejected / self.submitted if self.submitted else 0.0

    @property
    def mean_batch_size(self) -> float:
        done = self.completed + self.failed
        return done / self.batches if self.batches else 0.0

    def as_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "completed": self.completed,
            "failed": self.failed,
            "batches": self.batches,
            "flushes_full": self.flushes_full,
            "flushes_timer": self.flushes_timer,
            "flushes_drain": self.flushes_drain,
            "max_queue_depth": self.max_queue_depth,
            "rejection_rate": self.rejection_rate,
            "mean_batch_size": self.mean_batch_size,
        }


class Gateway:
    """Asyncio front-end over a :class:`PredictionService`.

    Use as an async context manager (or call :meth:`close` explicitly)
    so in-flight requests drain before the executor shuts down::

        async with Gateway(service, options=GatewayOptions(max_batch=8)) as gw:
            pred = await gw.submit(field.data, 16.0)

    All coordination state lives on the event loop (single-threaded),
    so no lock is needed; only the blocking ``predict_batch`` call
    leaves the loop, onto a dedicated one-thread executor that serves
    batches strictly in flush order.
    """

    def __init__(self, service, *, options: GatewayOptions | None = None) -> None:
        self.service = service
        self.options = options or GatewayOptions()
        self._queue: deque = deque()  # (data, ratio, future) awaiting a batch
        self._pending = 0  # queued + in-flight (admission-controlled)
        self._wake: asyncio.Event | None = None
        self._batcher: asyncio.Task | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-gateway"
        )
        self._closing = False
        self._closed = False
        # always-on counters behind GatewayStats
        self._submitted = 0
        self._accepted = 0
        self._rejected = 0
        self._completed = 0
        self._failed = 0
        self._batches = 0
        self._flushes = {"full": 0, "timer": 0, "drain": 0}
        self._max_queue_depth = 0

    # -- lifecycle ---------------------------------------------------------------

    def _ensure_started(self) -> None:
        loop = asyncio.get_running_loop()
        if self._loop is None:
            self._loop = loop
            self._wake = asyncio.Event()
            self._batcher = loop.create_task(self._run(), name="repro-gateway-batcher")
        elif self._loop is not loop:
            raise RuntimeError("Gateway is bound to a different event loop")

    async def close(self) -> None:
        """Stop admitting, drain every queued request, stop the batcher.

        Requests already admitted complete normally (their futures
        resolve with real predictions); only *new* submissions are
        refused, with :class:`GatewayClosed`.
        """
        if self._closed:
            return
        self._closing = True
        if self._batcher is not None:
            self._wake.set()
            await self._batcher
        self._closed = True
        self._executor.shutdown(wait=True)

    async def __aenter__(self) -> "Gateway":
        self._ensure_started()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # -- submission --------------------------------------------------------------

    async def submit(self, data, target_ratio: float):
        """One request: resolves to the same
        :class:`~repro.core.framework.Prediction` a direct
        ``service.predict(data, target_ratio, safety=options.safety)``
        call would return, bitwise. Raises :class:`Overloaded` at the
        admission cap and :class:`GatewayClosed` after :meth:`close`.
        """
        if self._closing or self._closed:
            raise GatewayClosed("gateway is closed")
        self._ensure_started()
        self._submitted += 1
        count("load.gateway.requests")
        if self._pending >= self.options.max_pending:
            self._rejected += 1
            count("load.gateway.rejections")
            raise Overloaded(self._pending, self.options.max_pending)
        self._accepted += 1
        self._pending += 1
        if self._pending > self._max_queue_depth:
            self._max_queue_depth = self._pending
        set_gauge("load.gateway.queue_depth", self._pending)
        set_gauge_max("load.gateway.queue_depth_max", self._pending)
        future = self._loop.create_future()
        self._queue.append((data, float(target_ratio), future))
        self._wake.set()
        return await future

    # -- batching ----------------------------------------------------------------

    async def _run(self) -> None:
        max_batch = self.options.max_batch
        max_wait = self.options.max_wait_ms / 1000.0
        loop = self._loop
        while True:
            # Idle until a request is queued (or close() starts the drain).
            while not self._queue and not self._closing:
                self._wake.clear()
                await self._wake.wait()
            if not self._queue and self._closing:
                return
            # One request is queued; linger up to max_wait for company,
            # unless the batch fills (or close() starts draining) first.
            deadline = loop.time() + max_wait
            while len(self._queue) < max_batch and not self._closing:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                self._wake.clear()
                try:
                    await asyncio.wait_for(self._wake.wait(), remaining)
                except asyncio.TimeoutError:
                    break
            batch = [
                self._queue.popleft()
                for _ in range(min(max_batch, len(self._queue)))
            ]
            if self._closing:
                reason = "drain"
            elif len(batch) == max_batch:
                reason = "full"
            else:
                reason = "timer"
            await self._serve_batch(batch, reason)

    async def _serve_batch(self, batch: list, reason: str) -> None:
        requests = [(data, ratio) for data, ratio, _ in batch]
        self._batches += 1
        self._flushes[reason] += 1
        count("load.gateway.batches")
        count(f"load.gateway.flushes.{reason}")
        observe("load.gateway.batch_size", len(batch))
        try:
            with timed_span(
                "load.gateway.batch", n_requests=len(batch), reason=reason
            ):
                preds = await self._loop.run_in_executor(
                    self._executor,
                    lambda: self.service.predict_batch(
                        requests, safety=self.options.safety
                    ),
                )
        except Exception as exc:  # noqa: BLE001 - failures belong to the callers
            for _, _, future in batch:
                self._failed += 1
                self._pending -= 1
                if not future.cancelled():
                    future.set_exception(exc)
        else:
            for (_, _, future), pred in zip(batch, preds):
                self._completed += 1
                self._pending -= 1
                if not future.cancelled():
                    future.set_result(pred)
        set_gauge("load.gateway.queue_depth", self._pending)

    # -- introspection -----------------------------------------------------------

    def stats(self) -> GatewayStats:
        """A :class:`GatewayStats` snapshot of the always-on counters."""
        return GatewayStats(
            submitted=self._submitted,
            accepted=self._accepted,
            rejected=self._rejected,
            completed=self._completed,
            failed=self._failed,
            batches=self._batches,
            flushes_full=self._flushes["full"],
            flushes_timer=self._flushes["timer"],
            flushes_drain=self._flushes["drain"],
            max_queue_depth=self._max_queue_depth,
        )
