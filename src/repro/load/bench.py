"""``load-bench``: the serving stack's sustained-traffic proof artifact.

Three phases, mirroring ``codec-bench`` / ``read-bench``:

1. **Determinism gate** — a seeded request list is answered twice: by
   direct ``service.predict`` calls (the reference), and through a
   :class:`~repro.load.gateway.Gateway` under several coalescing
   configurations (different ``max_batch`` / ``max_wait_ms``). Every
   gateway error bound must be *bitwise* equal to its direct-call
   reference; any divergence fails the benchmark (nonzero CLI exit).
2. **Capacity calibration** — the warm, batch-amortized per-request
   service latency is measured once and the open-loop rate sweep is
   expressed as multiples of that capacity, so the sweep brackets the
   saturation knee on fast and slow hosts alike.
3. **Workload sweep** — a run table (open-loop Poisson rates × closed-
   loop client counts × repetitions) executes via
   :mod:`repro.load.runtable`; each run records p50/p95/p99 latency,
   throughput, rejection rate, and feature-cache hit rate, and the
   open-loop trajectory is scanned for the **saturation point**: the
   first offered rate the gateway cannot sustain (throughput below
   90% of offered, or >1% of requests shed).

The report is committed as ``BENCH_serve.json`` at the repo root,
commit-stamped, so the serving stack's latency trajectory lives in
version control next to the code. ``--check`` (CI) keeps the
determinism gate and a micro sweep, writes nothing.
"""

from __future__ import annotations

import asyncio
import json
import time
from pathlib import Path

import numpy as np

from repro.bench.codec_bench import repo_commit
from repro.load.gateway import Gateway, GatewayOptions
from repro.load.runtable import build_run_table, execute_run
from repro.load.workload import DEFAULT_RATIOS
from repro.obs import span
from repro.serve.service import PredictionService, ServiceOptions

SCHEMA = "repro.load-bench/v1"
REPORT_NAME = "BENCH_serve.json"

_REPO_ROOT = Path(__file__).resolve().parents[3]

#: Sustainment thresholds for the saturation scan.
_SUSTAIN_THROUGHPUT = 0.90  # achieved >= 90% of offered
_SUSTAIN_REJECTIONS = 0.01  # < 1% shed


def build_field_pool(
    *, shape: tuple[int, ...] = (12, 16, 16), n_fields: int = 4, seed: int = 0
) -> list[np.ndarray]:
    """A deterministic pool of distinct fields for the request stream."""
    from repro.data import load_dataset

    fields = load_dataset("miranda", shape=tuple(shape), seed=seed + 1)
    if len(fields) < n_fields:
        fields = fields + load_dataset("nyx", shape=tuple(shape), seed=seed + 2)
    return [f.data for f in fields[: max(1, n_fields)]]


def _identity_requests(
    datas: list[np.ndarray], n_requests: int, seed: int
) -> list[tuple[int, float]]:
    rng = np.random.default_rng(seed)
    menu = np.asarray(DEFAULT_RATIOS, dtype=np.float64)
    return [
        (int(rng.integers(len(datas))), float(rng.choice(menu)))
        for _ in range(n_requests)
    ]


async def _gateway_answers(gateway: Gateway, datas, requests) -> list[float]:
    async with gateway:
        preds = await asyncio.gather(
            *(gateway.submit(datas[i], ratio) for i, ratio in requests)
        )
    return [float(p.error_bound) for p in preds]


def run_identity_gate(
    framework,
    datas: list[np.ndarray],
    *,
    n_requests: int = 32,
    seed: int = 0,
    batch_configs: tuple[tuple[int, float], ...] = ((1, 0.0), (4, 2.0), (16, 10.0)),
) -> dict:
    """Prove gateway responses == direct ``service.predict``, bitwise.

    Every config submits the identical request list all-at-once (maximal
    coalescing pressure: batches actually form at each ``max_batch``)
    and compares error bounds elementwise against per-request direct
    calls on a fresh service.
    """
    requests = _identity_requests(datas, n_requests, seed)
    with PredictionService(framework) as service:
        reference = [
            float(service.predict(datas[i], ratio).error_bound)
            for i, ratio in requests
        ]
    configs = {}
    for max_batch, max_wait_ms in batch_configs:
        options = GatewayOptions(
            max_batch=max_batch,
            max_wait_ms=max_wait_ms,
            max_pending=n_requests + 1,
        )
        with PredictionService(framework) as service:
            gateway = options.build(service)
            answers = asyncio.run(_gateway_answers(gateway, datas, requests))
            stats = gateway.stats()
        configs[f"batch{max_batch}-wait{max_wait_ms:g}ms"] = {
            "max_batch": int(max_batch),
            "max_wait_ms": float(max_wait_ms),
            "batches": stats.batches,
            "mean_batch_size": stats.mean_batch_size,
            "identical": answers == reference,
        }
    return {
        "n_requests": int(n_requests),
        "configs": configs,
        "identical": all(c["identical"] for c in configs.values()),
    }


def calibrate_capacity_rps(
    framework, datas: list[np.ndarray], *, reps: int = 5
) -> float:
    """Warm, batch-amortized requests/second of one service thread.

    Fills the feature cache, then times ``predict_batch`` over the whole
    pool ``reps`` times (best-of, like ``codec-bench``): the gateway's
    executor serves batches sequentially, so this is the ceiling the
    open-loop sweep should bracket.
    """
    requests = [(d, 8.0) for d in datas] * 4
    with PredictionService(framework) as service:
        service.predict_batch(requests)  # warm the cache
        best = float("inf")
        for _ in range(max(1, reps)):
            t0 = time.perf_counter()
            service.predict_batch(requests)
            best = min(best, time.perf_counter() - t0)
    return len(requests) / best if best > 0 else 1.0


def find_saturation(rows: list[dict]) -> dict:
    """Scan open-loop rows (rate-ascending) for the saturation knee.

    A rate level is *sustained* when its mean achieved throughput stays
    within 90% of offered and it sheds under 1% of requests. The
    saturation point is the first unsustained level; ``peak_rps`` is the
    best mean throughput seen anywhere in the sweep.
    """
    open_rows = [r for r in rows if r["topology"] == "open"]
    by_rate: dict[float, list[dict]] = {}
    for r in open_rows:
        by_rate.setdefault(r["load"], []).append(r)
    levels = []
    for rate in sorted(by_rate):
        group = by_rate[rate]
        throughput = float(np.mean([g["throughput_rps"] for g in group]))
        rejection = float(np.mean([g["rejection_rate"] for g in group]))
        levels.append({
            "offered_rps": rate,
            "throughput_rps": throughput,
            "rejection_rate": rejection,
            "sustained": (
                throughput >= _SUSTAIN_THROUGHPUT * rate
                and rejection < _SUSTAIN_REJECTIONS
            ),
        })
    peak = max((lv["throughput_rps"] for lv in levels), default=0.0)
    broken = next((lv for lv in levels if not lv["sustained"]), None)
    sustained = [lv for lv in levels if lv["sustained"]]
    return {
        "levels": levels,
        "reached": broken is not None,
        "saturation_offered_rps": broken["offered_rps"] if broken else None,
        "last_sustained_rps": (
            sustained[-1]["offered_rps"] if sustained else None
        ),
        "peak_rps": peak,
    }


def run_load_bench(
    framework,
    *,
    shape: tuple[int, ...] = (12, 16, 16),
    n_fields: int = 4,
    n_requests: int = 120,
    rate_multiples: tuple[float, ...] = (0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0),
    closed_clients: tuple[int, ...] = (1, 4, 16),
    repetitions: int = 2,
    max_batch: int = 16,
    max_wait_ms: float = 2.0,
    max_pending: int = 64,
    cache_entries: int = 256,
    identity_requests: int = 32,
    seed: int = 0,
) -> dict:
    """Run the full benchmark; returns the ``BENCH_serve.json`` dict.

    ``report["identical"]`` is the determinism verdict; the CLI exits
    nonzero when it is false.
    """
    datas = build_field_pool(shape=tuple(shape), n_fields=n_fields, seed=seed)

    with span("load_bench.identity", n_requests=identity_requests):
        identity = run_identity_gate(
            framework, datas, n_requests=identity_requests, seed=seed
        )

    with span("load_bench.calibrate"):
        capacity = calibrate_capacity_rps(framework, datas)
    open_rates = [round(capacity * m, 3) for m in rate_multiples]

    specs = build_run_table(
        open_rates=open_rates,
        closed_clients=list(closed_clients),
        n_requests=n_requests,
        repetitions=repetitions,
        base_seed=seed,
    )
    service_options = ServiceOptions(cache_entries=cache_entries)
    gateway_options = GatewayOptions(
        max_batch=max_batch, max_wait_ms=max_wait_ms, max_pending=max_pending
    )
    rows = []
    for spec in specs:
        result = execute_run(
            framework, spec, datas,
            service_options=service_options, gateway_options=gateway_options,
        )
        rows.append(result.row())

    return {
        "schema": SCHEMA,
        "commit": repo_commit(),
        "generated_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "compressor": framework.compressor_name,
        "shape": list(shape),
        "n_fields": int(n_fields),
        "n_requests": int(n_requests),
        "repetitions": int(repetitions),
        "seed": int(seed),
        "gateway": gateway_options.to_kwargs(),
        "service": service_options.to_kwargs(),
        "capacity_rps": capacity,
        "rate_multiples": list(rate_multiples),
        "identity": identity,
        "identical": identity["identical"],
        "runs": rows,
        "saturation": find_saturation(rows),
    }


def format_report(report: dict) -> str:
    """Human-readable summary: identity verdict, run table, saturation."""
    lines = [
        f"load-bench: {report['compressor']} shape={tuple(report['shape'])} "
        f"fields={report['n_fields']} requests/run={report['n_requests']} "
        f"reps={report['repetitions']} commit={report['commit'] or '?'}",
        f"capacity (warm, batched): {report['capacity_rps']:.1f} req/s",
        "identity gate: " + (
            "gateway responses bitwise-identical to direct service.predict"
            if report["identical"] else "DIVERGED"
        ),
        f"{'scenario':<24} {'rep':>3} {'thru rps':>9} {'p50 ms':>8} "
        f"{'p95 ms':>8} {'p99 ms':>8} {'reject':>7} {'cache':>6} {'batch':>6}",
    ]
    for r in report["runs"]:
        lines.append(
            f"{r['scenario']:<24} {r['repetition']:>3} "
            f"{r['throughput_rps']:>9.1f} {r['p50_ms']:>8.2f} "
            f"{r['p95_ms']:>8.2f} {r['p99_ms']:>8.2f} "
            f"{r['rejection_rate']:>7.1%} {r['cache_hit_rate']:>6.0%} "
            f"{r['mean_batch_size']:>6.1f}"
        )
    sat = report["saturation"]
    if sat["reached"]:
        last = (
            f"last sustained {sat['last_sustained_rps']:.1f} req/s"
            if sat["last_sustained_rps"] is not None
            else "no offered rate sustained"
        )
        lines.append(
            f"saturation: offered {sat['saturation_offered_rps']:.1f} req/s "
            f"breaks sustainment ({last}, peak throughput "
            f"{sat['peak_rps']:.1f} req/s)"
        )
    else:
        lines.append(
            f"saturation: not reached within the sweep "
            f"(peak throughput {sat['peak_rps']:.1f} req/s)"
        )
    return "\n".join(lines)


def write_report(report: dict, path: str | Path | None = None) -> Path:
    """Write the report JSON (default: ``BENCH_serve.json`` at repo root)."""
    out = Path(path) if path is not None else _REPO_ROOT / REPORT_NAME
    out.write_text(json.dumps(report, indent=2, sort_keys=False) + "\n")
    return out


def load_report(path: str | Path | None = None) -> dict | None:
    """Read a previously committed report; None when absent or unreadable."""
    p = Path(path) if path is not None else _REPO_ROOT / REPORT_NAME
    try:
        report = json.loads(p.read_text())
    except (OSError, ValueError):
        return None
    return report if report.get("schema") == SCHEMA else None
