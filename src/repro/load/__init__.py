"""repro.load — the traffic layer: async gateway, workloads, load-bench.

Where :mod:`repro.serve` makes one prediction fast, this package makes
a *stream* of them survivable. Four pieces:

- :class:`Gateway` / :class:`GatewayOptions` — asyncio front door over
  a :class:`~repro.serve.PredictionService`: bounded admission (typed
  :class:`Overloaded` rejections, never unbounded queues) and request
  coalescing into ``predict_batch`` calls (flush on ``max_batch`` or
  ``max_wait_ms``, whichever first), bitwise-identical to direct
  ``service.predict`` calls;
- :mod:`~repro.load.workload` — seeded workload topologies:
  :class:`OpenLoopPoisson` (arrival-rate-driven, finds saturation) and
  :class:`ClosedLoopClients` (concurrency-driven, measures latency);
- :mod:`~repro.load.runtable` — the scenario × load × repetition run
  table (:func:`build_run_table` / :func:`execute_run`);
- :mod:`~repro.load.bench` — the ``load-bench`` harness behind
  ``python -m repro load-bench``, committing ``BENCH_serve.json`` with
  a bitwise determinism gate and a located saturation point.

The blessed import surface is :mod:`repro.api` (``Gateway``,
``GatewayOptions``, ``Overloaded``); this package is the implementation.
"""

from repro.load.bench import (
    build_field_pool,
    calibrate_capacity_rps,
    find_saturation,
    format_report,
    load_report,
    run_identity_gate,
    run_load_bench,
    write_report,
)
from repro.load.gateway import (
    Gateway,
    GatewayClosed,
    GatewayOptions,
    GatewayStats,
    Overloaded,
)
from repro.load.runtable import RunResult, RunSpec, build_run_table, execute_run
from repro.load.workload import (
    ClosedLoopClients,
    Measurement,
    OpenLoopPoisson,
    WorkloadRequest,
    drive_closed_loop,
    drive_open_loop,
)

__all__ = [
    "Gateway",
    "GatewayOptions",
    "GatewayStats",
    "GatewayClosed",
    "Overloaded",
    "OpenLoopPoisson",
    "ClosedLoopClients",
    "WorkloadRequest",
    "Measurement",
    "drive_open_loop",
    "drive_closed_loop",
    "RunSpec",
    "RunResult",
    "build_run_table",
    "execute_run",
    "run_load_bench",
    "run_identity_gate",
    "calibrate_capacity_rps",
    "find_saturation",
    "build_field_pool",
    "format_report",
    "write_report",
    "load_report",
]
