"""Run-table driver: scenario × load level × repetition over the gateway.

The muBench-style experiment design: enumerate every benchmark run up
front as a :class:`RunSpec` (so the whole sweep is inspectable and each
run's seed is fixed before anything executes), then :func:`execute_run`
each spec against a *fresh* service + gateway — fresh so per-run cache
hit rates and queue statistics are honest, not inherited from the
previous load level.

Each run produces a :class:`RunResult` bundling the workload's
:class:`~repro.load.workload.Measurement` (latencies, rejections) with
the gateway's and service's typed stats snapshots; ``row()`` flattens
one result to the dict shape committed in ``BENCH_serve.json``.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

from repro.load.gateway import Gateway, GatewayOptions, GatewayStats
from repro.load.workload import (
    ClosedLoopClients,
    Measurement,
    OpenLoopPoisson,
    drive_closed_loop,
    drive_open_loop,
)
from repro.obs import timed_span
from repro.serve.service import PredictionService, ServiceOptions, ServiceStats

#: Seed stride between runs — each spec draws an independent stream.
_SEED_STRIDE = 7919


@dataclass(frozen=True, kw_only=True)
class RunSpec:
    """One cell of the run table, fixed before execution."""

    scenario: str  # human-readable, e.g. "open-poisson@40rps"
    topology: str  # "open" | "closed"
    load: float  # offered rate (open) or client count (closed)
    n_requests: int
    repetition: int
    seed: int


def build_run_table(
    *,
    open_rates: list[float] | tuple[float, ...] = (),
    closed_clients: list[int] | tuple[int, ...] = (),
    n_requests: int,
    repetitions: int = 1,
    base_seed: int = 0,
) -> list[RunSpec]:
    """Enumerate the sweep: every open-loop rate and closed-loop client
    count, ``repetitions`` times each, with per-run derived seeds."""
    if repetitions < 1:
        raise ValueError("repetitions must be >= 1")
    specs: list[RunSpec] = []
    for rep in range(repetitions):
        for rate in open_rates:
            specs.append(RunSpec(
                scenario=f"open-poisson@{rate:g}rps", topology="open",
                load=float(rate), n_requests=n_requests, repetition=rep,
                seed=base_seed + _SEED_STRIDE * len(specs),
            ))
        for clients in closed_clients:
            specs.append(RunSpec(
                scenario=f"closed-{clients}clients", topology="closed",
                load=float(clients), n_requests=n_requests, repetition=rep,
                seed=base_seed + _SEED_STRIDE * len(specs),
            ))
    return specs


@dataclass
class RunResult:
    """One executed run: workload measurement + typed stats snapshots."""

    spec: RunSpec
    measurement: Measurement
    gateway: GatewayStats
    service: ServiceStats

    def row(self) -> dict:
        """The per-run record committed in ``BENCH_serve.json``."""
        m = self.measurement
        return {
            "scenario": self.spec.scenario,
            "topology": self.spec.topology,
            "load": self.spec.load,
            "repetition": self.spec.repetition,
            "seed": self.spec.seed,
            "requests": len(m.outcomes),
            "completed": m.completed,
            "rejected": m.rejected,
            "rejection_rate": m.rejection_rate,
            "wall_s": m.wall_s,
            "throughput_rps": m.throughput_rps,
            "p50_ms": m.percentile_ms(50),
            "p95_ms": m.percentile_ms(95),
            "p99_ms": m.percentile_ms(99),
            "cache_hit_rate": self.service.cache.hit_rate,
            "batches": self.gateway.batches,
            "mean_batch_size": self.gateway.mean_batch_size,
        }


def _workload_for(spec: RunSpec, n_fields: int, ratios: tuple[float, ...]):
    if spec.topology == "open":
        return OpenLoopPoisson(
            rate=spec.load, n_requests=spec.n_requests, n_fields=n_fields,
            ratios=ratios, seed=spec.seed,
        )
    if spec.topology == "closed":
        clients = max(1, int(spec.load))
        return ClosedLoopClients(
            n_clients=clients,
            requests_per_client=max(1, spec.n_requests // clients),
            n_fields=n_fields, ratios=ratios, seed=spec.seed,
        )
    raise ValueError(f"unknown topology {spec.topology!r}")


async def _drive(gateway: Gateway, datas: list, workload) -> Measurement:
    async with gateway:
        if isinstance(workload, OpenLoopPoisson):
            return await drive_open_loop(gateway, datas, workload.schedule())
        return await drive_closed_loop(gateway, datas, workload.schedule())


def execute_run(
    framework,
    spec: RunSpec,
    datas: list,
    *,
    service_options: ServiceOptions | None = None,
    gateway_options: GatewayOptions | None = None,
    ratios: tuple[float, ...] | None = None,
) -> RunResult:
    """Run one spec against a fresh ``Service`` + ``Gateway`` pair.

    ``datas`` is the field pool the workload indexes into; ``ratios``
    overrides the default target-ratio menu. The event loop lives and
    dies inside this call (``asyncio.run``), so run tables execute from
    plain synchronous code.
    """
    from repro.load.workload import DEFAULT_RATIOS

    ratio_menu = tuple(ratios) if ratios is not None else DEFAULT_RATIOS
    workload = _workload_for(spec, len(datas), ratio_menu)
    with timed_span(
        "load.run", scenario=spec.scenario, repetition=spec.repetition
    ):
        with PredictionService(
            framework, options=service_options or ServiceOptions()
        ) as service:
            gateway = (gateway_options or GatewayOptions()).build(service)
            measurement = asyncio.run(_drive(gateway, datas, workload))
            return RunResult(
                spec=spec,
                measurement=measurement,
                gateway=gateway.stats(),
                service=service.stats(),
            )
