"""Metrics registry: counters, gauges, and histograms.

Complements the span tree with cumulative quantities that don't map to
one wall-clock interval: bytes in/out per compressor call, curve points
collected, BO iterations, calibration corrections applied, cache hits.

Instruments are thread-safe (one small lock each). The module-level
helpers (:func:`count`, :func:`observe`, :func:`set_gauge`) are the
recommended call sites: they check the tracing flag first, so a disabled
pipeline pays one flag test and nothing else.
"""

from __future__ import annotations

import threading

from repro.obs import trace as _trace


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, n: float = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """Last-write-wins value."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def set_max(self, value: float) -> None:
        """Keep the larger of the current and given value — a high-water
        mark (e.g. the deepest a queue ever got), where last-write-wins
        would erase the interesting extreme."""
        value = float(value)
        with self._lock:
            if value > self._value:
                self._value = value

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Streaming summary of observed values (count/total/min/max/mean).

    Running moments instead of stored samples keep memory constant no
    matter how many compressor calls a collection run makes.
    """

    __slots__ = ("name", "_count", "_total", "_min", "_max", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._count = 0
        self._total = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._total += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._total

    @property
    def mean(self) -> float:
        return self._total / self._count if self._count else 0.0

    @property
    def min(self) -> float:
        return self._min if self._count else 0.0

    @property
    def max(self) -> float:
        return self._max if self._count else 0.0

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
        }


class MetricsRegistry:
    """Named instruments, created on first use."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            inst = self._counters.get(name)
            if inst is None:
                inst = self._counters[name] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            inst = self._gauges.get(name)
            if inst is None:
                inst = self._gauges[name] = Gauge(name)
        return inst

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            inst = self._histograms.get(name)
            if inst is None:
                inst = self._histograms[name] = Histogram(name)
        return inst

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def as_dict(self) -> dict:
        with self._lock:
            return {
                "counters": {n: c.value for n, c in self._counters.items()},
                "gauges": {n: g.value for n, g in self._gauges.items()},
                "histograms": {n: h.as_dict() for n, h in self._histograms.items()},
            }


_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _REGISTRY


def count(name: str, n: float = 1) -> None:
    """Increment a counter — no-op while observability is disabled."""
    if _trace.enabled():
        _REGISTRY.counter(name).inc(n)


def observe(name: str, value: float) -> None:
    """Record a histogram sample — no-op while observability is disabled."""
    if _trace.enabled():
        _REGISTRY.histogram(name).observe(value)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge — no-op while observability is disabled."""
    if _trace.enabled():
        _REGISTRY.gauge(name).set(value)


def set_gauge_max(name: str, value: float) -> None:
    """Raise a gauge to ``value`` if it is below it (high-water mark) —
    no-op while observability is disabled."""
    if _trace.enabled():
        _REGISTRY.gauge(name).set_max(value)
