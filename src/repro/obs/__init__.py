"""repro.obs — dependency-free observability for the pipeline.

Three pieces (all stdlib-only, importable from anywhere in the repo
without cycles):

- **spans** (:mod:`repro.obs.trace`) — hierarchical wall-clock tracing
  with a thread-safe recorder and JSON export/import;
- **metrics** (:mod:`repro.obs.metrics`) — counters, gauges, histograms
  in a process-wide registry;
- **summary** (:mod:`repro.obs.summary`) — per-stage aggregation behind
  ``python -m repro trace-summary``.

Disabled by default: :func:`span` returns a shared no-op and the metric
helpers return after one flag check, so the instrumented hot paths cost
effectively nothing until :func:`enable` (or the CLI ``--trace`` flag)
turns recording on.

Typical use::

    from repro import obs

    with obs.capture() as rec:
        framework.fit(fields)
    obs.export_trace("trace.json", rec)

    from repro.obs import load_trace, format_summary
    payload = load_trace("trace.json")
    print(format_summary(payload["spans"], payload["metrics"]))
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    count,
    observe,
    registry,
    set_gauge,
    set_gauge_max,
)
from repro.obs.summary import StageStats, aggregate, format_summary
from repro.obs.trace import (
    Span,
    StageClock,
    TraceRecorder,
    capture,
    disable,
    enable,
    emit_span,
    enabled,
    export_trace,
    get_recorder,
    load_trace,
    span,
    timed_span,
)

__all__ = [
    "Span",
    "StageClock",
    "TraceRecorder",
    "span",
    "timed_span",
    "emit_span",
    "enable",
    "disable",
    "enabled",
    "capture",
    "get_recorder",
    "export_trace",
    "load_trace",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "count",
    "observe",
    "set_gauge",
    "set_gauge_max",
    "StageStats",
    "aggregate",
    "format_summary",
]
