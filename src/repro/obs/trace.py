"""Hierarchical tracing spans with a thread-safe recorder.

The pipeline's three stages (collection → training → inference, Fig. 1)
are instrumented with *spans*: named, attributed, nested wall-clock
intervals. A span tree answers "where did the setup time go?" (Fig. 8)
and "what did BO iteration 7 evaluate?" (Fig. 5b) without ad-hoc prints.

Two entry points:

- :func:`span` — observability-only instrumentation. When tracing is
  disabled (the default) it returns a shared no-op singleton: no lock,
  no allocation, one module-flag check. Call sites therefore cost
  nothing on the hot path of a production deployment.
- :func:`timed_span` — always measures wall time (the caller needs the
  duration regardless, e.g. to build a :class:`SetupReport`), but only
  records into the active trace when tracing is enabled. Because report
  and trace share the measurement, they agree exactly.

Nesting is per-thread (a thread-local stack); spans opened on a thread
with no enclosing span become trace roots, so worker threads record
cleanly alongside the main thread. Export/import round-trips through
plain JSON.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from pathlib import Path

_ENABLED = False
_recorder: "TraceRecorder | None" = None

_TRACE_FORMAT_VERSION = 1


def _json_safe(value):
    """Best-effort conversion of span attributes to JSON-able values."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if hasattr(value, "tolist"):  # numpy array or scalar
        return value.tolist()
    return repr(value)


class Span:
    """One named wall-clock interval with attributes and child spans."""

    __slots__ = ("name", "attrs", "start_s", "end_s", "children", "_recorder")

    def __init__(self, name: str, attrs: dict | None = None,
                 recorder: "TraceRecorder | None" = None) -> None:
        self.name = name
        self.attrs = dict(attrs) if attrs else {}
        self.start_s = 0.0
        self.end_s = 0.0
        self.children: list[Span] = []
        self._recorder = recorder

    @property
    def elapsed(self) -> float:
        return max(self.end_s - self.start_s, 0.0)

    def set(self, **attrs) -> "Span":
        """Attach attributes after the fact (e.g. outputs sized mid-span)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        if self._recorder is not None:
            self._recorder._push(self)
        self.start_s = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self.end_s = time.perf_counter()
        if self._recorder is not None:
            self._recorder._pop(self)
        return False

    # -- (de)serialization -----------------------------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "elapsed": self.elapsed,
            "attrs": _json_safe(self.attrs),
            "children": [c.to_dict() for c in self.children],
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "Span":
        sp = cls(raw["name"], raw.get("attrs") or {})
        sp.start_s = 0.0
        sp.end_s = float(raw.get("elapsed", 0.0))
        sp.children = [cls.from_dict(c) for c in raw.get("children", ())]
        return sp

    def __repr__(self) -> str:
        return f"Span({self.name!r}, {self.elapsed*1000:.2f}ms, {len(self.children)} children)"


class _NoopSpan:
    """Shared do-nothing span returned by :func:`span` when disabled."""

    __slots__ = ()
    name = ""
    elapsed = 0.0

    @property
    def attrs(self) -> dict:
        return {}

    def set(self, **attrs) -> "_NoopSpan":
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()


class TraceRecorder:
    """Thread-safe collector of span trees.

    Parent/child links use a per-thread stack (no lock: a span's parent
    is always on the same thread); only the cross-thread roots list is
    lock-guarded.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        self.roots: list[Span] = []

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span) -> None:
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self.roots.append(span)
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # tolerate mismatched exits
            stack.remove(span)

    def clear(self) -> None:
        with self._lock:
            self.roots = []
        self._local = threading.local()

    def to_dict(self) -> dict:
        with self._lock:
            return {"spans": [r.to_dict() for r in self.roots]}


# -- module-level switch ----------------------------------------------------


def enabled() -> bool:
    """Is tracing (and metrics recording) currently on?"""
    return _ENABLED


def enable(recorder: TraceRecorder | None = None, *,
           clear_metrics: bool = True) -> TraceRecorder:
    """Turn tracing on; returns the (fresh by default) active recorder."""
    global _ENABLED, _recorder
    from repro.obs.metrics import registry

    _recorder = recorder if recorder is not None else TraceRecorder()
    if clear_metrics:
        registry().clear()
    _ENABLED = True
    return _recorder


def disable() -> TraceRecorder | None:
    """Turn tracing off; returns the recorder that was active (if any)."""
    global _ENABLED, _recorder
    rec = _recorder
    _ENABLED = False
    _recorder = None
    return rec


def get_recorder() -> TraceRecorder | None:
    return _recorder


@contextmanager
def capture(recorder: TraceRecorder | None = None):
    """``with capture() as rec:`` — enable tracing for the block only."""
    rec = enable(recorder)
    try:
        yield rec
    finally:
        disable()


def span(name: str, **attrs):
    """Start a recording span, or the shared no-op when tracing is off.

    The disabled path performs exactly one module-flag check — no lock,
    no allocation — so instrumentation can live on hot paths.
    """
    if not _ENABLED:
        return _NOOP_SPAN
    return Span(name, attrs, recorder=_recorder)


def timed_span(name: str, **attrs) -> Span:
    """A span that always measures wall time.

    Use where the caller consumes ``.elapsed`` regardless of tracing
    (stage timings feeding :class:`SetupReport` / :class:`Prediction`);
    it lands in the active trace only when tracing is enabled, making
    trace totals and report totals identical by construction.
    """
    return Span(name, attrs, recorder=_recorder if _ENABLED else None)


def emit_span(name: str, seconds: float, **attrs) -> None:
    """Record one already-measured interval as a span ending *now*.

    The retrospective counterpart of :func:`span` for aggregated work:
    a tiled pipeline accumulates per-stage wall time across hundreds of
    tiles and emits *one* span per stage afterwards, instead of one span
    per tile (which would swamp ``trace-summary`` on large fields). The
    span is parented wherever a live ``with span(...)`` would be.
    No-op when tracing is off.
    """
    if not _ENABLED:
        return
    sp = Span(name, attrs, recorder=_recorder)
    with sp:
        pass
    sp.start_s = sp.end_s - max(float(seconds), 0.0)


class StageClock:
    """Accumulates per-stage wall time across tiles, emitting one
    aggregated span per stage.

    ``with clock("quantize"):`` adds the block's duration (and one call)
    to the ``"quantize"`` bucket; :meth:`emit` then records a single
    ``<prefix>.<stage>`` span per touched stage with ``calls`` and any
    shared attributes attached. All bookkeeping is skipped while tracing
    is disabled, so fused tile loops can time every stage unconditionally.
    """

    __slots__ = ("prefix", "attrs", "_seconds", "_calls")

    def __init__(self, prefix: str, **attrs) -> None:
        self.prefix = prefix
        self.attrs = attrs
        self._seconds: dict[str, float] = {}
        self._calls: dict[str, int] = {}

    @contextmanager
    def __call__(self, stage: str):
        if not _ENABLED:
            yield
            return
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._seconds[stage] = self._seconds.get(stage, 0.0) + elapsed
            self._calls[stage] = self._calls.get(stage, 0) + 1

    def add(self, stage: str, seconds: float, calls: int = 1) -> None:
        """Fold an externally measured interval into ``stage``."""
        if not _ENABLED:
            return
        self._seconds[stage] = self._seconds.get(stage, 0.0) + float(seconds)
        self._calls[stage] = self._calls.get(stage, 0) + int(calls)

    def emit(self, **extra) -> None:
        """Emit one span per accumulated stage and reset the clock."""
        if not _ENABLED:
            return
        for stage, seconds in self._seconds.items():
            emit_span(
                f"{self.prefix}.{stage}",
                seconds,
                calls=self._calls[stage],
                **self.attrs,
                **extra,
            )
        self._seconds = {}
        self._calls = {}


# -- JSON export / import ---------------------------------------------------


def export_trace(path: str | Path, recorder: TraceRecorder | None = None,
                 metrics: dict | None = None) -> Path:
    """Write a recorder's span trees (plus optional metrics) as JSON."""
    from repro.obs.metrics import registry

    rec = recorder if recorder is not None else _recorder
    if rec is None:
        raise RuntimeError("no trace recorder to export (tracing never enabled?)")
    payload = {
        "version": _TRACE_FORMAT_VERSION,
        "spans": rec.to_dict()["spans"],
        "metrics": metrics if metrics is not None else registry().as_dict(),
    }
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def load_trace(path: str | Path) -> dict:
    """Inverse of :func:`export_trace`: ``{"spans": [Span...], "metrics": {...}}``."""
    raw = json.loads(Path(path).read_text())
    if raw.get("version") != _TRACE_FORMAT_VERSION:
        raise ValueError(f"unsupported trace format version {raw.get('version')!r}")
    return {
        "spans": [Span.from_dict(s) for s in raw.get("spans", ())],
        "metrics": raw.get("metrics", {}),
    }
