"""Aggregation of a span tree into a per-stage table.

Backs ``python -m repro trace-summary out.json``: group every span in
the trace by name, sum wall time, and report self time (total minus
direct children) so nested stages — ``fit.collection`` containing one
``collection.field`` per field containing compressor calls — read as a
breakdown instead of double-counted noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.trace import Span


@dataclass
class StageStats:
    """Aggregate of all spans sharing one name."""

    name: str
    count: int = 0
    total_seconds: float = 0.0
    self_seconds: float = 0.0
    attrs_sample: dict = field(default_factory=dict)

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0


def aggregate(spans: list[Span]) -> dict[str, StageStats]:
    """Per-name stats over the whole tree (recursive)."""
    stats: dict[str, StageStats] = {}

    def visit(span: Span) -> None:
        st = stats.get(span.name)
        if st is None:
            st = stats[span.name] = StageStats(span.name)
        st.count += 1
        st.total_seconds += span.elapsed
        st.self_seconds += max(span.elapsed - sum(c.elapsed for c in span.children), 0.0)
        if not st.attrs_sample and span.attrs:
            st.attrs_sample = dict(span.attrs)
        for child in span.children:
            visit(child)

    for root in spans:
        visit(root)
    return stats


def format_summary(spans: list[Span], metrics: dict | None = None) -> str:
    """Human-readable per-stage table, busiest stages first."""
    stats = sorted(aggregate(spans).values(), key=lambda s: -s.total_seconds)
    width = max([len(s.name) for s in stats] + [len("stage")])
    lines = [
        f"{'stage':<{width}} {'calls':>7} {'total(s)':>10} {'self(s)':>10} {'mean(ms)':>10}",
        "-" * (width + 41),
    ]
    for s in stats:
        lines.append(
            f"{s.name:<{width}} {s.count:>7} {s.total_seconds:>10.4f} "
            f"{s.self_seconds:>10.4f} {s.mean_seconds*1000:>10.3f}"
        )
    if not stats:
        lines.append("(no spans recorded)")

    if metrics:
        counters = metrics.get("counters", {})
        gauges = metrics.get("gauges", {})
        histograms = metrics.get("histograms", {})
        if counters or gauges or histograms:
            lines.append("")
            lines.append("metrics")
            lines.append("-" * (width + 41))
            for name in sorted(counters):
                lines.append(f"{name:<{width}} {counters[name]:>20g}")
            for name in sorted(gauges):
                lines.append(f"{name:<{width}} {gauges[name]:>20g}")
            for name in sorted(histograms):
                h = histograms[name]
                lines.append(
                    f"{name:<{width}} n={h['count']} total={h['total']:.4f} "
                    f"mean={h['mean']:.5f} min={h['min']:.5f} max={h['max']:.5f}"
                )
    return "\n".join(lines)
